// Differential engine harness, part 1: workload presets × fault profiles.
//
// Every monitored-role preset runs twice — once on the reference heap
// engine (the pre-rewrite binary-heap/std::function implementation, kept
// verbatim as Engine::kReference) and once on the bucketed engine — and
// the results must be bit-identical: the packet trace, every switch
// counter, executed_events(), and the Kind::kSim section of the telemetry
// snapshot (the same JSON section the golden scorecard gate compares).
// Fault profiles off and heavy both run, so the fault-injection paths
// (shrunken buffers, failed uplinks, mirror drops) are covered too.
//
// gtest_discover_tests runs each case in its own process, so resetting the
// global metrics registry between the two engine runs is safe.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "fbdcsim/faults/fault_plan.h"
#include "fbdcsim/telemetry/export.h"
#include "fbdcsim/telemetry/telemetry.h"
#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/presets.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::workload {
namespace {

using core::HostRole;

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive fingerprint of everything a rack run produces.
std::uint64_t fingerprint(const RackSimResult& r) {
  std::uint64_t h = 0;
  for (const core::PacketHeader& p : r.trace) {
    h = mix64(h, static_cast<std::uint64_t>(p.timestamp.count_nanos()));
    h = mix64(h, p.tuple.src_ip.value());
    h = mix64(h, p.tuple.dst_ip.value());
    h = mix64(h, (static_cast<std::uint64_t>(p.tuple.src_port) << 16) | p.tuple.dst_port);
    h = mix64(h, static_cast<std::uint64_t>(p.tuple.protocol));
    h = mix64(h, static_cast<std::uint64_t>(p.frame_bytes));
    h = mix64(h, static_cast<std::uint64_t>(p.payload_bytes));
    h = mix64(h, static_cast<std::uint64_t>(p.flags.syn) | (static_cast<std::uint64_t>(p.flags.ack) << 1) |
                     (static_cast<std::uint64_t>(p.flags.fin) << 2) |
                     (static_cast<std::uint64_t>(p.flags.rst) << 3) |
                     (static_cast<std::uint64_t>(p.flags.psh) << 4));
  }
  for (const auto& s : r.buffer_seconds) {
    h = mix64(h, static_cast<std::uint64_t>(s.second));
    h = mix64(h, static_cast<std::uint64_t>(s.median_fraction * 1e12));
    h = mix64(h, static_cast<std::uint64_t>(s.max_fraction * 1e12));
  }
  for (const switching::PortCounters& c : {r.uplink, r.downlinks}) {
    h = mix64(h, static_cast<std::uint64_t>(c.tx_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.tx_bytes));
    h = mix64(h, static_cast<std::uint64_t>(c.enqueued_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.dropped_packets));
    h = mix64(h, static_cast<std::uint64_t>(c.dropped_bytes));
    h = mix64(h, static_cast<std::uint64_t>(c.queuing_delay_ns));
    h = mix64(h, static_cast<std::uint64_t>(c.max_queuing_delay_ns));
  }
  h = mix64(h, static_cast<std::uint64_t>(r.capture_dropped));
  h = mix64(h, static_cast<std::uint64_t>(r.capture_injected_dropped));
  h = mix64(h, r.events);
  return h;
}

/// The deterministic (Kind::kSim) section of the metrics snapshot, as the
/// byte-stable JSON the golden gate uses.
std::string sim_metrics_json() {
  const std::string json =
      telemetry::to_json(telemetry::MetricsRegistry::global().snapshot());
  const std::size_t sim = json.find("\"sim\":");
  const std::size_t wall = json.find(",\"wall\":");
  if (sim == std::string::npos || wall == std::string::npos) return json;
  return json.substr(sim, wall - sim);
}

struct Outcome {
  std::uint64_t fingerprint;
  std::uint64_t events;
  std::size_t trace_len;
  std::string sim_metrics;
};

Outcome run_once(sim::Simulator::Engine engine, HostRole role, bool heavy_faults) {
  const topology::Fleet fleet = build_rack_experiment_fleet();
  RackSimConfig cfg = default_rack_config(fleet, role, core::Duration::millis(300));
  cfg.warmup = core::Duration::millis(100);
  cfg.engine = engine;
  cfg.sample_buffer = true;
  faults::FaultConfig fault_cfg = faults::heavy_profile();
  faults::FaultPlan plan{fault_cfg};
  if (heavy_faults) cfg.faults = &plan;

  telemetry::MetricsRegistry::global().reset();
  RackSimulation rack{fleet, cfg};
  const RackSimResult result = rack.run();
  return Outcome{fingerprint(result), result.events, result.trace.size(),
                 sim_metrics_json()};
}

using RackParam = std::tuple<HostRole, bool>;

std::string rack_param_name(const ::testing::TestParamInfo<RackParam>& info) {
  std::string name{core::to_string(std::get<0>(info.param))};  // "Cache-f" -> "Cachef"
  std::erase_if(name, [](char c) { return c == '-'; });
  return name + (std::get<1>(info.param) ? "FaultsHeavy" : "FaultsOff");
}

class EngineDifferentialRack : public ::testing::TestWithParam<RackParam> {};

TEST_P(EngineDifferentialRack, BucketedEngineIsBitIdenticalToReference) {
  const auto [role, heavy] = GetParam();
  const Outcome reference = run_once(sim::Simulator::Engine::kReference, role, heavy);
  const Outcome bucketed = run_once(sim::Simulator::Engine::kBucketed, role, heavy);

  ASSERT_GT(reference.trace_len, 0u);
  EXPECT_EQ(bucketed.trace_len, reference.trace_len);
  EXPECT_EQ(bucketed.events, reference.events);
  EXPECT_EQ(bucketed.fingerprint, reference.fingerprint);
  EXPECT_EQ(bucketed.sim_metrics, reference.sim_metrics);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, EngineDifferentialRack,
    ::testing::Combine(::testing::Values(HostRole::kWeb, HostRole::kCacheFollower,
                                         HostRole::kCacheLeader, HostRole::kHadoop),
                       ::testing::Values(false, true)),
    rack_param_name);

}  // namespace
}  // namespace fbdcsim::workload
