#include "fbdcsim/sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace fbdcsim::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_seconds(3.0));
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_seconds(1.0);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
    sim.schedule_after(Duration::seconds(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::from_seconds(3.0));
}

TEST(SimulatorTest, CannotScheduleInPast) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_seconds(1.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(0.5), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_seconds(5.0), [&] { ++fired; });
  sim.run_until(TimePoint::from_seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::from_seconds(2.0));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(TimePoint::from_seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimePoint::from_seconds(2.0), [&] { fired = true; });
  sim.run_until(TimePoint::from_seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ExecutedEventsCount) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.schedule_at(TimePoint::from_seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 17u);
}

TEST(SimulatorTest, CascadingEvents) {
  // An event chain: each event schedules the next until a bound.
  Simulator sim;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < 100) sim.schedule_after(Duration::millis(1), step);
  };
  sim.schedule_at(TimePoint::zero(), step);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), TimePoint::from_nanos(99'000'000));
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint t) { fires.push_back(t); }};
  sim.run_until(TimePoint::from_nanos(35'000'000));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], TimePoint::from_nanos(10'000'000));
  EXPECT_EQ(fires[2], TimePoint::from_nanos(30'000'000));
}

TEST(PeriodicTimerTest, CancelStopsFiring) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint) { ++fires; }};
  sim.schedule_at(TimePoint::from_nanos(25'000'000), [&] { timer.cancel(); });
  sim.run_until(TimePoint::from_nanos(100'000'000));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimerTest, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Duration{}, [](TimePoint) {}), std::invalid_argument);
}

TEST(PeriodicTimerTest, TickCancellingOwnTimerDoesNotReschedule) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint) {
    ++fires;
    timer.cancel();  // re-entrant: cancel from inside our own tick
  }};
  sim.run_until(TimePoint::from_nanos(100'000'000));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeriodicTimerTest, DestroyingTimerInsideOwnTickIsSafe) {
  // The pre-rewrite implementation kept the tick callback inside the timer
  // object; destroying the timer mid-tick destroyed the executing closure.
  Simulator sim;
  int fires = 0;
  PeriodicTimer* timer = nullptr;
  timer = new PeriodicTimer{sim, Duration::millis(10), [&](TimePoint) {
    ++fires;
    delete timer;  // destroys the PeriodicTimer while its tick runs
    timer = nullptr;
  }};
  sim.run_until(TimePoint::from_nanos(100'000'000));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(timer, nullptr);
}

TEST(PeriodicTimerTest, SimulatorClearDuringTickIsSafe) {
  for (const auto engine : {Simulator::Engine::kBucketed, Simulator::Engine::kReference}) {
    Simulator sim{engine};
    int fires = 0;
    PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint) {
      if (++fires == 3) sim.clear();
    }};
    sim.run_until(TimePoint::from_nanos(200'000'000));
    // clear() dropped the pending re-arm event, but the tick itself re-arms
    // after returning; cancel to stop the chain and drain.
    EXPECT_GE(fires, 3);
    timer.cancel();
    sim.clear();
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(SimulatorTest, ClearInsideActionDropsQueueButKeepsNewSchedules) {
  for (const auto engine : {Simulator::Engine::kBucketed, Simulator::Engine::kReference}) {
    Simulator sim{engine};
    std::vector<int> order;
    sim.schedule_at(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
    sim.schedule_at(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
    sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
      order.push_back(1);
      sim.clear();  // drops the t=2 and t=3 events
      sim.schedule_after(Duration::seconds(4), [&] { order.push_back(5); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 5}));
    EXPECT_EQ(sim.now(), TimePoint::from_seconds(5.0));
  }
}

TEST(SimulatorTest, ReferenceEngineMatchesOriginalSemantics) {
  Simulator sim{Simulator::Engine::kReference};
  EXPECT_EQ(sim.engine(), Simulator::Engine::kReference);
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_until(TimePoint::from_seconds(1.5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorTest, EventsBeyondWheelWindowFireInOrder) {
  // The wheel covers ~4.2 ms; these events start in the overflow heap and
  // must migrate into the wheel as the cursor advances.
  Simulator sim;
  std::vector<std::int64_t> fired;
  for (const std::int64_t ms : {5'000, 1, 900, 40, 7, 12'000, 300}) {
    sim.schedule_at(TimePoint::from_nanos(ms * 1'000'000),
                    [&fired, ms] { fired.push_back(ms); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<std::int64_t>{1, 7, 40, 300, 900, 5'000, 12'000}));
}

TEST(SimulatorTest, EqualTimeFifoAcrossBucketBoundary) {
  // Events exactly on a bucket edge (4096-ns multiples) keep FIFO order.
  Simulator sim;
  std::vector<int> order;
  const TimePoint edge = TimePoint::from_nanos(4096 * 7);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(edge, [&order, i] { order.push_back(i); });
  }
  sim.schedule_at(TimePoint::from_nanos(4096 * 7 - 1), [&order] { order.push_back(-1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SimulatorTest, ScheduleIntoPartiallyDrainedBucketAfterHorizonStop) {
  // Stop mid-bucket, then schedule an event into the same bucket earlier
  // than the still-pending one: the new event must fire first.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_nanos(100), [&] { order.push_back(0); });
  sim.schedule_at(TimePoint::from_nanos(3'000), [&] { order.push_back(2); });
  sim.run_until(TimePoint::from_nanos(1'000));  // mid-bucket: t=3000 pending
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.schedule_at(TimePoint::from_nanos(2'000), [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, ActionSchedulingAtCurrentTimeRunsThisDrain) {
  // A chain of same-time schedules from inside actions (the active-heap
  // path) drains fully before time advances.
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) sim.schedule_at(sim.now(), recurse);
  };
  sim.schedule_at(TimePoint::from_nanos(5'000), recurse);
  sim.schedule_at(TimePoint::from_nanos(5'001), [&] { EXPECT_EQ(depth, 50); });
  sim.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), TimePoint::from_nanos(5'001));
}

TEST(SimulatorTest, LongIdleGapsJumpNotScan) {
  // Day-scale gaps between events: the cursor must jump (via the overflow
  // heap) rather than scan ~10^10 empty buckets. Completes instantly iff
  // the jump works.
  Simulator sim;
  int fired = 0;
  TimePoint t = TimePoint::zero();
  for (int i = 0; i < 20; ++i) {
    t += Duration::hours(1);
    sim.schedule_at(t, [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(sim.now(), TimePoint::zero() + Duration::hours(20));
}

TEST(SimulatorTest, PendingEventsTracksAllTiers) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_nanos(10), [] {});           // wheel
  sim.schedule_at(TimePoint::from_nanos(100'000), [] {});      // wheel, later bucket
  sim.schedule_at(TimePoint::from_seconds(10.0), [] {});       // overflow
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.run_until(TimePoint::from_nanos(50));
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, MoveOnlyCallablesWorkOnBothEngines) {
  for (const auto engine : {Simulator::Engine::kBucketed, Simulator::Engine::kReference}) {
    Simulator sim{engine};
    auto payload = std::make_unique<int>(17);
    int seen = 0;
    sim.schedule_at(TimePoint::from_nanos(5),
                    [p = std::move(payload), &seen] { seen = *p; });
    sim.run();
    EXPECT_EQ(seen, 17);
  }
}

}  // namespace
}  // namespace fbdcsim::sim
