#include "fbdcsim/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace fbdcsim::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_seconds(3.0));
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_seconds(1.0);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] {
    sim.schedule_after(Duration::seconds(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::from_seconds(3.0));
}

TEST(SimulatorTest, CannotScheduleInPast) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_seconds(1.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_seconds(0.5), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_seconds(5.0), [&] { ++fired; });
  sim.run_until(TimePoint::from_seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::from_seconds(2.0));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(TimePoint::from_seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimePoint::from_seconds(2.0), [&] { fired = true; });
  sim.run_until(TimePoint::from_seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_seconds(1.0), [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ExecutedEventsCount) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.schedule_at(TimePoint::from_seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 17u);
}

TEST(SimulatorTest, CascadingEvents) {
  // An event chain: each event schedules the next until a bound.
  Simulator sim;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < 100) sim.schedule_after(Duration::millis(1), step);
  };
  sim.schedule_at(TimePoint::zero(), step);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), TimePoint::from_nanos(99'000'000));
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint t) { fires.push_back(t); }};
  sim.run_until(TimePoint::from_nanos(35'000'000));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], TimePoint::from_nanos(10'000'000));
  EXPECT_EQ(fires[2], TimePoint::from_nanos(30'000'000));
}

TEST(PeriodicTimerTest, CancelStopsFiring) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, Duration::millis(10), [&](TimePoint) { ++fires; }};
  sim.schedule_at(TimePoint::from_nanos(25'000'000), [&] { timer.cancel(); });
  sim.run_until(TimePoint::from_nanos(100'000'000));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimerTest, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Duration{}, [](TimePoint) {}), std::invalid_argument);
}

}  // namespace
}  // namespace fbdcsim::sim
