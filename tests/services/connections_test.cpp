#include "fbdcsim/services/connections.h"

#include <gtest/gtest.h>

#include <vector>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::services {
namespace {

using core::DataSize;
using core::Duration;
using core::TimePoint;

/// Records everything a model emits.
class RecordingSink : public TrafficSink {
 public:
  void host_send(const SimPacket& pkt) override { sent.push_back(pkt); }
  void host_receive(const SimPacket& pkt) override { received.push_back(pkt); }

  std::vector<SimPacket> sent;
  std::vector<SimPacket> received;
};

class WireTest : public ::testing::Test {
 protected:
  WireTest()
      : fleet_{topology::build_single_cluster_fleet(topology::ClusterType::kHadoop, 2, 4)},
        self_{fleet_.hosts().front().id},
        peer_{fleet_.hosts().back().id},
        table_{fleet_, self_},
        wire_{sim_, sink_, self_} {}

  topology::Fleet fleet_;
  core::HostId self_;
  core::HostId peer_;
  ConnectionTable table_;
  sim::Simulator sim_;
  RecordingSink sink_;
  Wire wire_;
};

TEST_F(WireTest, PooledConnectionIsStable) {
  Connection& a = table_.pooled(peer_, 80);
  Connection& b = table_.pooled(peer_, 80);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.tuple, b.tuple);
  EXPECT_TRUE(a.pooled);
}

TEST_F(WireTest, PooledTupleOrientationIsSelfToPeer) {
  const Connection& c = table_.pooled(peer_, 80);
  EXPECT_EQ(c.tuple.src_ip, fleet_.host(self_).addr);
  EXPECT_EQ(c.tuple.dst_ip, fleet_.host(peer_).addr);
  EXPECT_EQ(c.tuple.dst_port, 80);
  EXPECT_GE(c.tuple.src_port, core::ports::kEphemeralBase);
}

TEST_F(WireTest, EphemeralConnectionsGetFreshPorts) {
  const Connection a = table_.ephemeral(peer_, 80);
  const Connection b = table_.ephemeral(peer_, 80);
  EXPECT_NE(a.tuple.src_port, b.tuple.src_port);
  EXPECT_FALSE(a.pooled);
}

TEST_F(WireTest, InboundConnectionKeepsSelfToPeerOrientation) {
  const Connection c = table_.ephemeral_inbound(peer_, 11211);
  EXPECT_EQ(c.tuple.src_ip, fleet_.host(self_).addr);
  EXPECT_EQ(c.tuple.src_port, 11211);  // well-known port on self side
  Connection& p = table_.pooled_inbound(peer_, 11211);
  EXPECT_EQ(p.tuple.src_ip, fleet_.host(self_).addr);
  EXPECT_EQ(p.tuple.src_port, 11211);
  EXPECT_EQ(&p, &table_.pooled_inbound(peer_, 11211));
}

TEST_F(WireTest, SendSegmentsAtMss) {
  const Connection& c = table_.pooled(peer_, 80);
  wire_.send(c, DataSize::bytes(3000), TimePoint::zero(), Duration::micros(1),
             /*ack_inbound=*/false);
  sim_.run();
  // 3000 B = 1460 + 1460 + 80.
  ASSERT_EQ(sink_.sent.size(), 3u);
  EXPECT_EQ(sink_.sent[0].header.payload_bytes, 1460);
  EXPECT_EQ(sink_.sent[1].header.payload_bytes, 1460);
  EXPECT_EQ(sink_.sent[2].header.payload_bytes, 80);
  EXPECT_FALSE(sink_.sent[0].header.flags.psh);
  EXPECT_TRUE(sink_.sent[2].header.flags.psh);
  // Byte conservation.
  std::int64_t total = 0;
  for (const auto& p : sink_.sent) total += p.header.payload_bytes;
  EXPECT_EQ(total, 3000);
}

TEST_F(WireTest, SendSynthesizesDelayedAcks) {
  const Connection& c = table_.pooled(peer_, 80);
  wire_.send(c, DataSize::bytes(4 * 1460), TimePoint::zero());
  sim_.run();
  EXPECT_EQ(sink_.sent.size(), 4u);
  // Delayed ACK: one per two segments.
  ASSERT_EQ(sink_.received.size(), 2u);
  for (const auto& ack : sink_.received) {
    EXPECT_EQ(ack.header.payload_bytes, 0);
    EXPECT_TRUE(ack.header.flags.ack);
    EXPECT_EQ(ack.header.tuple, c.tuple.reversed());
    EXPECT_EQ(ack.header.frame_bytes, core::wire::kMinFrameBytes);
  }
}

TEST_F(WireTest, ReceiveAckSuppression) {
  const Connection& c = table_.pooled(peer_, 80);
  wire_.receive(c, DataSize::bytes(500), TimePoint::zero(), Duration::micros(1),
                /*ack_outbound=*/false);
  sim_.run();
  EXPECT_EQ(sink_.received.size(), 1u);
  EXPECT_TRUE(sink_.sent.empty());  // no standalone ACK
}

TEST_F(WireTest, OpenEmitsHandshake) {
  const Connection c = table_.ephemeral(peer_, 80);
  const TimePoint done = wire_.open(c, TimePoint::zero(), Duration::micros(100));
  sim_.run();
  EXPECT_EQ(done, TimePoint::from_nanos(100'000));
  ASSERT_EQ(sink_.sent.size(), 2u);      // SYN + final ACK
  ASSERT_EQ(sink_.received.size(), 1u);  // SYN-ACK
  EXPECT_TRUE(sink_.sent[0].header.flags.syn);
  EXPECT_FALSE(sink_.sent[0].header.flags.ack);
  EXPECT_TRUE(sink_.received[0].header.flags.syn);
  EXPECT_TRUE(sink_.received[0].header.flags.ack);
  EXPECT_FALSE(sink_.sent[1].header.flags.syn);
}

TEST_F(WireTest, OpenInboundSynComesFromPeer) {
  const Connection c = table_.ephemeral_inbound(peer_, 11211);
  wire_.open_inbound(c, TimePoint::zero());
  sim_.run();
  ASSERT_EQ(sink_.received.size(), 2u);  // SYN + final ACK from peer
  EXPECT_TRUE(sink_.received[0].header.flags.syn);
  EXPECT_FALSE(sink_.received[0].header.flags.ack);
  EXPECT_EQ(sink_.received[0].header.tuple.src_ip, fleet_.host(peer_).addr);
  ASSERT_EQ(sink_.sent.size(), 1u);  // SYN-ACK from self
  EXPECT_TRUE(sink_.sent[0].header.flags.syn);
  EXPECT_TRUE(sink_.sent[0].header.flags.ack);
}

TEST_F(WireTest, CloseEmitsFinExchange) {
  const Connection c = table_.ephemeral(peer_, 80);
  wire_.close(c, TimePoint::zero());
  sim_.run();
  ASSERT_EQ(sink_.sent.size(), 2u);
  ASSERT_EQ(sink_.received.size(), 1u);
  EXPECT_TRUE(sink_.sent[0].header.flags.fin);
  EXPECT_TRUE(sink_.received[0].header.flags.fin);
}

TEST_F(WireTest, TimestampsMatchSimClock) {
  const Connection& c = table_.pooled(peer_, 80);
  wire_.send(c, DataSize::bytes(2 * 1460), TimePoint::from_seconds(1.0),
             Duration::micros(5), false);
  sim_.run();
  ASSERT_EQ(sink_.sent.size(), 2u);
  EXPECT_EQ(sink_.sent[0].header.timestamp, TimePoint::from_seconds(1.0));
  EXPECT_EQ(sink_.sent[1].header.timestamp,
            TimePoint::from_seconds(1.0) + Duration::micros(5));
}

}  // namespace
}  // namespace fbdcsim::services
