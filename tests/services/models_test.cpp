// Behavioural tests of the per-role traffic models: each model must emit
// traffic whose destination-service mix, locality, and packet features match
// the paper's characterization of that role (loose tolerances — these are
// distributional checks, not golden values).
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "fbdcsim/services/backend.h"
#include "fbdcsim/services/cache.h"
#include "fbdcsim/services/hadoop.h"
#include "fbdcsim/services/web.h"
#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::services {
namespace {

using core::Duration;
using core::HostRole;
using core::Locality;

topology::Fleet medium_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 2;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 16;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 11;  // leaves one SLB rack per Frontend cluster
  cfg.frontend_cache_racks = 3;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

class CollectingSink : public TrafficSink {
 public:
  void host_send(const SimPacket& pkt) override { sent.push_back(pkt); }
  void host_receive(const SimPacket& pkt) override { received.push_back(pkt); }

  std::vector<SimPacket> sent;
  std::vector<SimPacket> received;
};

struct RunResult {
  std::vector<SimPacket> sent;
  std::vector<SimPacket> received;
};

RunResult run_model(const topology::Fleet& fleet, core::HostId host, const ServiceMix& mix,
                    Duration horizon, std::uint64_t seed = 5) {
  sim::Simulator sim;
  CollectingSink sink;
  auto model = make_model(fleet, host, mix, core::RngStream{seed});
  model->start(sim, sink);
  sim.run_until(core::TimePoint::zero() + horizon);
  return RunResult{std::move(sink.sent), std::move(sink.received)};
}

core::HostId first_host_of(const topology::Fleet& fleet, HostRole role) {
  for (const topology::Host& h : fleet.hosts()) {
    if (h.role == role) return h.id;
  }
  return core::HostId::invalid();
}

std::map<HostRole, double> role_shares(const topology::Fleet& fleet,
                                       const std::vector<SimPacket>& sent) {
  std::map<HostRole, double> bytes;
  double total = 0.0;
  for (const SimPacket& p : sent) {
    const auto b = static_cast<double>(p.header.payload_bytes);
    bytes[fleet.host(p.dst).role] += b;
    total += b;
  }
  if (total > 0) {
    for (auto& [role, b] : bytes) b = b / total * 100.0;
  }
  return bytes;
}

std::array<double, core::kNumLocalities> locality_shares(const topology::Fleet& fleet,
                                                         core::HostId self,
                                                         const std::vector<SimPacket>& sent) {
  std::array<double, core::kNumLocalities> bytes{};
  double total = 0.0;
  for (const SimPacket& p : sent) {
    const auto b = static_cast<double>(p.header.frame_bytes);
    bytes[static_cast<int>(fleet.locality(self, p.dst))] += b;
    total += b;
  }
  if (total > 0) {
    for (double& b : bytes) b = b / total * 100.0;
  }
  return bytes;
}

TEST(WebServerModelTest, DestinationMixMatchesTable2) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kWeb);
  const auto result = run_model(fleet, host, ServiceMix{}, Duration::seconds(3));
  ASSERT_GT(result.sent.size(), 1000u);

  const auto shares = role_shares(fleet, result.sent);
  // Table 2 Web row: cache 63.1, MF 15.2, SLB 5.6, rest 16.1.
  EXPECT_NEAR(shares.at(HostRole::kCacheFollower), 63.1, 10.0);
  EXPECT_NEAR(shares.at(HostRole::kMultifeed), 15.2, 8.0);
  EXPECT_NEAR(shares.at(HostRole::kSlb), 5.6, 5.0);
  EXPECT_NEAR(shares.at(HostRole::kService), 16.1, 8.0);
}

TEST(WebServerModelTest, TrafficIsClusterDominatedNotRackLocal) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kWeb);
  const auto result = run_model(fleet, host, ServiceMix{}, Duration::seconds(2));
  const auto loc = locality_shares(fleet, host, result.sent);
  EXPECT_LT(loc[static_cast<int>(Locality::kIntraRack)], 5.0);
  EXPECT_GT(loc[static_cast<int>(Locality::kIntraCluster)], 60.0);
  EXPECT_GT(loc[static_cast<int>(Locality::kInterDatacenter)], 1.0);
}

TEST(WebServerModelTest, EmitsEphemeralSyns) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kWeb);
  const auto result = run_model(fleet, host, ServiceMix{}, Duration::seconds(2));
  std::int64_t syns = 0;
  for (const SimPacket& p : result.sent) {
    if (p.header.flags.syn && !p.header.flags.ack) ++syns;
  }
  // ~500/s ephemeral rate.
  EXPECT_NEAR(static_cast<double>(syns), 1000.0, 400.0);
}

TEST(CacheFollowerModelTest, RespondsMostlyToWeb) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheFollower);
  ServiceMix mix;
  mix.cache_follower.gets_served_per_sec = 10'000.0;  // keep the test fast
  const auto result = run_model(fleet, host, mix, Duration::seconds(2));
  const auto shares = role_shares(fleet, result.sent);
  EXPECT_GT(shares.at(HostRole::kWeb), 80.0);  // Table 2: 88.7
  EXPECT_LT(shares.at(HostRole::kWeb), 97.0);
}

TEST(CacheFollowerModelTest, SpreadsAcrossWebTier) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheFollower);
  ServiceMix mix;
  mix.cache_follower.gets_served_per_sec = 20'000.0;
  const auto result = run_model(fleet, host, mix, Duration::seconds(2));
  std::set<std::uint32_t> dests;
  for (const SimPacket& p : result.sent) {
    if (fleet.host(p.dst).role == HostRole::kWeb) dests.insert(p.dst.value());
  }
  // >90% of the cluster's Web servers contacted (paper §4.2).
  const auto web_count =
      fleet.hosts_with_role_in_cluster(HostRole::kWeb, fleet.host(host).cluster).size();
  EXPECT_GT(dests.size(), web_count * 9 / 10);
}

TEST(CacheFollowerModelTest, MitigationClipsSurges) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheFollower);
  ServiceMix mix;
  mix.cache_follower.gets_served_per_sec = 2'000.0;

  sim::Simulator sim;
  CollectingSink sink;
  CacheFollowerModel model{fleet, host, mix, core::RngStream{5}};
  model.start(sim, sink);
  sim.run_until(core::TimePoint::from_seconds(120.0));
  EXPECT_GT(model.surges_started(), 0);
  EXPECT_EQ(model.surges_mitigated(), model.surges_started());
}

TEST(CacheLeaderModelTest, TrafficReachesAcrossDatacenters) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheLeader);
  ServiceMix mix;
  mix.cache_leader.coherency_msgs_per_sec = 5'000.0;
  mix.cache_leader.db_ops_per_sec = 200.0;
  const auto result = run_model(fleet, host, mix, Duration::seconds(2));
  const auto loc = locality_shares(fleet, host, result.sent);
  // Table 3 Cache row: ~0.2 rack / 13 cluster / 41 DC / 46 inter-DC.
  EXPECT_LT(loc[static_cast<int>(Locality::kIntraRack)], 5.0);
  EXPECT_LT(loc[static_cast<int>(Locality::kIntraCluster)], 30.0);
  EXPECT_GT(loc[static_cast<int>(Locality::kIntraDatacenter)], 25.0);
  EXPECT_GT(loc[static_cast<int>(Locality::kInterDatacenter)], 25.0);
}

TEST(CacheLeaderModelTest, MostBytesStayInCacheService) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheLeader);
  ServiceMix mix;
  mix.cache_leader.coherency_msgs_per_sec = 5'000.0;
  mix.cache_leader.db_ops_per_sec = 150.0;
  const auto result = run_model(fleet, host, mix, Duration::seconds(2));
  const auto shares = role_shares(fleet, result.sent);
  double cache_total = 0.0;
  if (shares.contains(HostRole::kCacheFollower)) cache_total += shares.at(HostRole::kCacheFollower);
  if (shares.contains(HostRole::kCacheLeader)) cache_total += shares.at(HostRole::kCacheLeader);
  EXPECT_GT(cache_total, 70.0);  // Table 2: 86.6
}

TEST(HadoopModelTest, BytesStayInHadoopService) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kHadoop);
  ServiceMix mix;
  mix.hadoop.quiet_period_mean = Duration::seconds(1);
  mix.hadoop.busy_period_mean = Duration::seconds(2);
  const auto result = run_model(fleet, host, mix, Duration::seconds(5));
  const auto shares = role_shares(fleet, result.sent);
  EXPECT_GT(shares.at(HostRole::kHadoop), 99.0);  // Table 2: 99.8
}

TEST(HadoopModelTest, RackLocalityDominates) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kHadoop);
  ServiceMix mix;
  mix.hadoop.quiet_period_mean = Duration::seconds(1);
  mix.hadoop.busy_period_mean = Duration::seconds(2);
  const auto result = run_model(fleet, host, mix, Duration::seconds(5));
  const auto loc = locality_shares(fleet, host, result.sent);
  // Paper busy trace: 75.7% rack-local, remainder intra-cluster.
  EXPECT_GT(loc[static_cast<int>(Locality::kIntraRack)], 50.0);
  EXPECT_GT(loc[static_cast<int>(Locality::kIntraCluster)], 10.0);
  EXPECT_LT(loc[static_cast<int>(Locality::kIntraDatacenter)] +
                loc[static_cast<int>(Locality::kInterDatacenter)],
            2.0);
}

TEST(HadoopModelTest, PacketsAreBimodal) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kHadoop);
  ServiceMix mix;
  mix.hadoop.quiet_period_mean = Duration::seconds(1);
  mix.hadoop.busy_period_mean = Duration::seconds(2);
  const auto result = run_model(fleet, host, mix, Duration::seconds(5));
  std::int64_t mtu = 0, ack = 0, other = 0;
  for (const SimPacket& p : result.sent) {
    if (p.header.frame_bytes >= 1514) {
      ++mtu;
    } else if (p.header.frame_bytes <= 64) {
      ++ack;
    } else {
      ++other;
    }
  }
  // The two modes dominate (Figure 12's Hadoop curve).
  EXPECT_GT(mtu + ack, 8 * other);
}

TEST(HadoopModelTest, AlternatesPhases) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kHadoop);
  ServiceMix mix;
  mix.hadoop.quiet_period_mean = Duration::seconds(1);
  mix.hadoop.busy_period_mean = Duration::seconds(1);

  sim::Simulator sim;
  CollectingSink sink;
  HadoopModel model{fleet, host, mix, core::RngStream{5}};
  model.start(sim, sink);
  bool saw_busy = false, saw_quiet = false;
  for (int i = 0; i < 200; ++i) {
    sim.run_until(core::TimePoint::from_seconds(0.1 * (i + 1)));
    (model.busy() ? saw_busy : saw_quiet) = true;
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_quiet);
}

TEST(HadoopModelTest, PartnerSetIsClusterSpread) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kHadoop);
  HadoopModel model{fleet, host, ServiceMix{}, core::RngStream{5}};
  std::set<std::uint32_t> partner_racks;
  for (const core::HostId p : model.partners()) {
    EXPECT_EQ(fleet.host(p).role, HostRole::kHadoop);
    EXPECT_NE(fleet.host(p).rack, fleet.host(host).rack);
    partner_racks.insert(fleet.host(p).rack.value());
  }
  EXPECT_GE(partner_racks.size(), 4u);
}

class BackendModelTest : public ::testing::TestWithParam<HostRole> {};

TEST_P(BackendModelTest, EmitsTraffic) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, GetParam());
  ASSERT_TRUE(host.is_valid());
  const auto result = run_model(fleet, host, ServiceMix{}, Duration::seconds(2));
  EXPECT_GT(result.sent.size(), 10u);
  for (const SimPacket& p : result.sent) {
    EXPECT_EQ(p.src, host);
    EXPECT_NE(p.dst, host);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoles, BackendModelTest,
                         ::testing::Values(HostRole::kWeb, HostRole::kCacheFollower,
                                           HostRole::kCacheLeader, HostRole::kHadoop,
                                           HostRole::kMultifeed, HostRole::kSlb,
                                           HostRole::kDatabase, HostRole::kService));

TEST(ModelDeterminismTest, SameSeedSameTrace) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kWeb);
  const auto a = run_model(fleet, host, ServiceMix{}, Duration::millis(500), 11);
  const auto b = run_model(fleet, host, ServiceMix{}, Duration::millis(500), 11);
  ASSERT_EQ(a.sent.size(), b.sent.size());
  for (std::size_t i = 0; i < a.sent.size(); ++i) {
    EXPECT_EQ(a.sent[i].header.timestamp, b.sent[i].header.timestamp);
    EXPECT_EQ(a.sent[i].header.tuple, b.sent[i].header.tuple);
  }
}

TEST(ModelDeterminismTest, DifferentSeedsDiffer) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kWeb);
  const auto a = run_model(fleet, host, ServiceMix{}, Duration::millis(300), 11);
  const auto b = run_model(fleet, host, ServiceMix{}, Duration::millis(300), 12);
  EXPECT_NE(a.sent.size(), b.sent.size());
}

TEST(ScaleRatesTest, LoadBalancingOffConcentrates) {
  const topology::Fleet fleet = medium_fleet();
  const core::HostId host = first_host_of(fleet, HostRole::kCacheFollower);
  ServiceMix lb_on;
  lb_on.cache_follower.gets_served_per_sec = 20'000.0;
  ServiceMix lb_off = lb_on;
  lb_off.load_balancing_enabled = false;

  auto top_share = [&](const ServiceMix& mix) {
    const auto result = run_model(fleet, host, mix, Duration::seconds(1));
    std::map<std::uint32_t, int> counts;
    int total = 0;
    for (const SimPacket& p : result.sent) {
      if (fleet.host(p.dst).role != HostRole::kWeb) continue;
      ++counts[p.dst.value()];
      ++total;
    }
    int max_count = 0;
    for (const auto& [dst, c] : counts) max_count = std::max(max_count, c);
    return static_cast<double>(max_count) / total;
  };
  EXPECT_GT(top_share(lb_off), 4.0 * top_share(lb_on));
}

}  // namespace
}  // namespace fbdcsim::services
