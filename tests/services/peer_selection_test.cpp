#include "fbdcsim/services/peer_selection.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fbdcsim/topology/standard_fleet.h"

namespace fbdcsim::services {
namespace {

topology::Fleet test_fleet() {
  topology::StandardFleetConfig cfg;
  cfg.sites = 2;
  cfg.datacenters_per_site = 1;
  cfg.frontend_clusters = 2;
  cfg.cache_clusters = 1;
  cfg.hadoop_clusters = 1;
  cfg.database_clusters = 1;
  cfg.service_clusters = 1;
  cfg.racks_per_cluster = 8;
  cfg.hosts_per_rack = 4;
  cfg.frontend_web_racks = 5;
  cfg.frontend_cache_racks = 2;
  cfg.frontend_multifeed_racks = 1;
  return topology::build_standard_fleet(cfg);
}

class PeerSelectionScopeTest : public ::testing::TestWithParam<Scope> {};

TEST_P(PeerSelectionScopeTest, AllCandidatesSatisfyScope) {
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;  // a Web host
  PeerSelector sel{fleet, self};
  const topology::Host& s = fleet.host(self);

  const Scope scope = GetParam();
  for (const core::HostRole role :
       {core::HostRole::kWeb, core::HostRole::kCacheFollower, core::HostRole::kService}) {
    for (const core::HostId cand : sel.candidates(role, scope)) {
      const topology::Host& c = fleet.host(cand);
      EXPECT_NE(cand, self);
      EXPECT_EQ(c.role, role);
      switch (scope) {
        case Scope::kSameRack: EXPECT_EQ(c.rack, s.rack); break;
        case Scope::kSameCluster: EXPECT_EQ(c.cluster, s.cluster); break;
        case Scope::kSameClusterOtherRack:
          EXPECT_EQ(c.cluster, s.cluster);
          EXPECT_NE(c.rack, s.rack);
          break;
        case Scope::kSameDatacenterOtherCluster:
          EXPECT_EQ(c.datacenter, s.datacenter);
          EXPECT_NE(c.cluster, s.cluster);
          break;
        case Scope::kSameDatacenter: EXPECT_EQ(c.datacenter, s.datacenter); break;
        case Scope::kOtherDatacentersSameSite:
          EXPECT_EQ(c.site, s.site);
          EXPECT_NE(c.datacenter, s.datacenter);
          break;
        case Scope::kOtherSites: EXPECT_NE(c.site, s.site); break;
        case Scope::kOtherDatacenters: EXPECT_NE(c.datacenter, s.datacenter); break;
        case Scope::kAnywhere: break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScopes, PeerSelectionScopeTest,
                         ::testing::Values(Scope::kSameRack, Scope::kSameCluster,
                                           Scope::kSameClusterOtherRack,
                                           Scope::kSameDatacenterOtherCluster,
                                           Scope::kSameDatacenter,
                                           Scope::kOtherDatacentersSameSite,
                                           Scope::kOtherSites, Scope::kOtherDatacenters,
                                           Scope::kAnywhere));

TEST(PeerSelectionTest, ScopesPartitionByConstruction) {
  // SameCluster == SameRack + SameClusterOtherRack (as candidate sets).
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;
  PeerSelector sel{fleet, self};
  const auto whole = sel.candidates(core::HostRole::kWeb, Scope::kSameCluster);
  const auto rack = sel.candidates(core::HostRole::kWeb, Scope::kSameRack);
  const auto other = sel.candidates(core::HostRole::kWeb, Scope::kSameClusterOtherRack);
  EXPECT_EQ(whole.size(), rack.size() + other.size());
}

TEST(PeerSelectionTest, PickIsRoughlyUniform) {
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;
  PeerSelector sel{fleet, self};
  core::RngStream rng{17};

  std::map<core::HostId, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto peer = sel.pick(core::HostRole::kCacheFollower, Scope::kSameCluster, rng);
    ASSERT_TRUE(peer.has_value());
    ++counts[*peer];
  }
  const auto candidates = sel.candidates(core::HostRole::kCacheFollower, Scope::kSameCluster);
  EXPECT_EQ(counts.size(), candidates.size());
  const double expected = static_cast<double>(n) / static_cast<double>(candidates.size());
  for (const auto& [host, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.3);
  }
}

TEST(PeerSelectionTest, PickEmptyScopeIsNull) {
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;
  PeerSelector sel{fleet, self};
  core::RngStream rng{17};
  // No Hadoop hosts inside a Frontend cluster.
  EXPECT_FALSE(sel.pick(core::HostRole::kHadoop, Scope::kSameCluster, rng).has_value());
}

TEST(PeerSelectionTest, SkewedPickConcentrates) {
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;
  PeerSelector sel{fleet, self};
  core::RngStream rng{21};

  std::map<core::HostId, int> counts;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto peer =
        sel.pick_skewed(core::HostRole::kCacheFollower, Scope::kSameCluster, rng, 1.2);
    ASSERT_TRUE(peer.has_value());
    ++counts[*peer];
  }
  // The most popular candidate should dominate the least popular by a lot.
  int max_count = 0;
  int min_count = n;
  for (const auto& [host, count] : counts) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 10 * std::max(1, min_count));
}

TEST(PeerSelectionTest, SkewRotationChangesHotSet) {
  const topology::Fleet fleet = test_fleet();
  const core::HostId self = fleet.hosts().front().id;
  PeerSelector sel{fleet, self};

  auto hottest = [&](std::uint64_t rotation) {
    core::RngStream rng{31};
    std::map<core::HostId, int> counts;
    for (int i = 0; i < 5'000; ++i) {
      const auto peer = sel.pick_skewed(core::HostRole::kCacheFollower, Scope::kSameCluster,
                                        rng, 1.2, rotation);
      ++counts[*peer];
    }
    core::HostId best;
    int best_count = -1;
    for (const auto& [host, count] : counts) {
      if (count > best_count) {
        best = host;
        best_count = count;
      }
    }
    return best;
  };
  EXPECT_NE(hottest(0), hottest(1));
}

}  // namespace
}  // namespace fbdcsim::services
