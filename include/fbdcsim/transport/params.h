// Tuning knobs of the flow-level TCP model (transport/mux.h). Defaults
// match a paper-era production host: Linux Reno/CUBIC-family defaults
// (IW10, 200 ms min RTO, 3-dupack fast retransmit) on a 10-Gbps NIC.
#pragma once

#include <cstdint>

#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::transport {

struct TcpParams {
  /// Maximum segment size; 1460 B matches the fleet's 1500-B MTU.
  std::int64_t mss_bytes = core::wire::kMaxTcpPayloadBytes;
  /// Initial congestion window, in segments (IW10, RFC 6928 — deployed
  /// fleet-wide well before the paper's measurement window).
  int initial_window_segments = 10;
  /// Duplicate ACKs that trigger fast retransmit.
  int dupack_threshold = 3;
  /// Congestion-window cap (stands in for the socket send buffer).
  core::DataSize max_cwnd = core::DataSize::kilobytes(4096);
  /// Floor of the retransmission timer (Linux's 200 ms minimum RTO).
  core::Duration min_rto = core::Duration::millis(200);
  /// RTO doubling cap: backoff never exceeds min_rto << max_backoff.
  int max_backoff = 6;
  /// Host NIC line rate — bounds per-connection emission pacing.
  core::DataRate nic_rate = core::DataRate::gigabits_per_sec(10);
  /// Fixed per-endpoint stack+NIC turnaround (receive -> respond).
  core::Duration host_delay = core::Duration::micros(5);

  /// One-way propagation beyond the monitored RSW, by peer locality.
  /// Intra-rack peers are reached through the RSW itself (zero beyond-RSW
  /// delay); the others approximate cluster fabric, DC fabric, and the
  /// inter-site backbone of Section 3.1.
  core::Duration cluster_one_way = core::Duration::micros(25);
  core::Duration datacenter_one_way = core::Duration::micros(75);
  core::Duration interdc_one_way = core::Duration::micros(17'500);

  /// Handshake/FIN retransmission attempts before the connection gives up
  /// (SYN retries use the RTO machinery with exponential backoff).
  int max_handshake_tries = 5;
};

}  // namespace fbdcsim::transport
