// Tuning knobs of the flow-level TCP model (transport/mux.h). Defaults
// match a paper-era production host: Linux Reno/CUBIC-family defaults
// (IW10, 200 ms min RTO, 3-dupack fast retransmit) on a 10-Gbps NIC.
#pragma once

#include <cstdint>
#include <string_view>

#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::transport {

/// Congestion-control law selection. kNewReno is the default and is
/// byte-identical to every pre-DCTCP release; kDctcp adds ECN-driven
/// window scaling (RFC 8257) on top of the same loss machinery.
enum class CongestionControl : std::uint8_t {
  kNewReno = 0,
  kDctcp = 1,
};

[[nodiscard]] const char* to_string(CongestionControl cc);

/// Parses a FBDCSIM_CC-style spec ("reno" | "newreno" | "dctcp",
/// case-sensitive). Returns true on success; on failure leaves `out`
/// untouched and returns false.
[[nodiscard]] bool parse_cc_spec(std::string_view spec, CongestionControl& out);

/// Resolves the FBDCSIM_CC environment variable: unset/empty -> kNewReno;
/// malformed -> kNewReno plus one stderr diagnostic. Never throws.
[[nodiscard]] CongestionControl cc_from_env();

/// Loss-recovery law selection. kNewReno is the default and is
/// byte-identical to every pre-SACK release; kSack replaces the
/// one-hole-per-RTT partial-ACK loop with a selective-acknowledgment
/// scoreboard and RFC-6675-style pipe accounting (transport/tcp.h).
enum class LossRecovery : std::uint8_t {
  kNewReno = 0,
  kSack = 1,
};

[[nodiscard]] const char* to_string(LossRecovery recovery);

/// Parses a FBDCSIM_RECOVERY-style spec ("newreno" | "sack",
/// case-sensitive). Returns true on success; on failure leaves `out`
/// untouched and returns false.
[[nodiscard]] bool parse_recovery_spec(std::string_view spec, LossRecovery& out);

/// Resolves the FBDCSIM_RECOVERY environment variable: unset/empty ->
/// kNewReno; malformed -> kNewReno plus one stderr diagnostic. Never throws.
[[nodiscard]] LossRecovery recovery_from_env();

/// How a connection's fixed beyond-the-RSW propagation delay is derived.
enum class RttMode : std::uint8_t {
  /// One constant per locality class (cluster_one_way etc.) — the
  /// historical behavior, byte-identical to pre-topology-RTT releases.
  kLocalityClass = 0,
  /// Hop count along the actual 4-post fabric path times per_hop_one_way,
  /// plus inter_site_one_way once when the endpoints sit in different
  /// sites (topology::hops_beyond_rsw).
  kTopology = 1,
};

struct TcpParams {
  /// Maximum segment size; 1460 B matches the fleet's 1500-B MTU.
  std::int64_t mss_bytes = core::wire::kMaxTcpPayloadBytes;
  /// Initial congestion window, in segments (IW10, RFC 6928 — deployed
  /// fleet-wide well before the paper's measurement window).
  int initial_window_segments = 10;
  /// Duplicate ACKs that trigger fast retransmit.
  int dupack_threshold = 3;
  /// Congestion-window cap (stands in for the socket send buffer).
  core::DataSize max_cwnd = core::DataSize::kilobytes(4096);
  /// Floor of the retransmission timer (Linux's 200 ms minimum RTO).
  core::Duration min_rto = core::Duration::millis(200);
  /// RTO doubling cap: backoff never exceeds min_rto << max_backoff.
  int max_backoff = 6;
  /// Host NIC line rate — bounds per-connection emission pacing.
  core::DataRate nic_rate = core::DataRate::gigabits_per_sec(10);
  /// Fixed per-endpoint stack+NIC turnaround (receive -> respond).
  core::Duration host_delay = core::Duration::micros(5);

  /// One-way propagation beyond the monitored RSW, by peer locality.
  /// Intra-rack peers are reached through the RSW itself (zero beyond-RSW
  /// delay); the others approximate cluster fabric, DC fabric, and the
  /// inter-site backbone of Section 3.1.
  core::Duration cluster_one_way = core::Duration::micros(25);
  core::Duration datacenter_one_way = core::Duration::micros(75);
  core::Duration interdc_one_way = core::Duration::micros(17'500);

  /// Handshake/FIN retransmission attempts before the connection gives up
  /// (SYN retries use the RTO machinery with exponential backoff).
  int max_handshake_tries = 5;

  /// Congestion-control law. kNewReno (default) leaves every packet
  /// non-ECT and never consults the DCTCP fields below.
  CongestionControl cc = CongestionControl::kNewReno;
  /// DCTCP alpha EWMA gain as a shift: alpha <- alpha(1 - 2^-g) + F*2^-g
  /// with g = dctcp_gain_shift (RFC 8257 recommends g = 4, i.e. 1/16).
  int dctcp_gain_shift = 4;
  /// Initial alpha in Q16 fixed point (kDctcpAlphaUnit = 1.0). Starting at
  /// 1.0 (Linux behavior) makes the first marked window halve like Reno.
  std::int64_t dctcp_initial_alpha = 1 << 16;

  /// Loss-recovery law. kNewReno (default) keeps the classic partial-ACK
  /// hole-by-hole retransmission loop; kSack activates the selective-ACK
  /// scoreboard. Composes freely with `cc` (Reno+SACK, DCTCP+SACK).
  LossRecovery recovery = LossRecovery::kNewReno;

  /// Beyond-the-RSW delay derivation (see RttMode). kLocalityClass keeps
  /// the three constants above authoritative; kTopology derives the delay
  /// from the fabric path instead.
  RttMode rtt_mode = RttMode::kLocalityClass;
  /// Per-hop one-way latency under RttMode::kTopology. 12.5 us per
  /// switch hop makes the 2-hop intra-cluster path equal the legacy
  /// 25-us cluster_one_way constant.
  core::Duration per_hop_one_way = core::Duration::nanos(12'500);
  /// Extra one-way propagation added once when the endpoints sit in
  /// different sites (the inter-site backbone's geographic distance, which
  /// no per-hop constant can represent). The default makes the 5-hop
  /// inter-site path total exactly the legacy 17.5-ms interdc_one_way:
  /// 5 * 12.5 us + 17'437.5 us = 17'500 us.
  core::Duration inter_site_one_way = core::Duration::nanos(17'437'500);
};

}  // namespace fbdcsim::transport
