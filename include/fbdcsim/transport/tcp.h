// Per-connection state of the flow-level TCP model, plus the pure
// congestion-control transition laws (free functions so the property suite
// can exercise them without a simulator).
//
// A TcpConnection models BOTH directions of one connection as seen from
// the monitored rack: `out` is the byte stream self -> peer (the modelled
// host is the sender), `in` is peer -> self (the mux runs the remote
// sender locally and its segments enter the rack through the monitored
// host's RSW downlink — the fan-in point where shared-buffer congestion
// actually happens). Each direction is a HalfStream: Reno/NewReno sender
// state on one end and the cumulative-ACK receiver it talks to on the
// other.
#pragma once

#include <cstdint>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::transport {

enum class ConnState : std::uint8_t {
  kClosed,       // created, handshake not begun
  kSynSent,      // self sent SYN (outbound open)
  kSynReceived,  // peer's SYN arrived, self sent SYN-ACK (inbound open)
  kEstablished,
  kFinWait,      // FIN sent, waiting for peer's FIN-ACK
  kDone,         // teardown complete; slot ready for recycling
};

/// One direction's sender + receiver state. Byte indices are absolute
/// stream offsets (no ISN arithmetic; handshake packets carry no payload).
struct HalfStream {
  // -- sender --
  std::int64_t demand{0};         // total bytes the application has queued
  std::int64_t snd_una{0};        // lowest unacknowledged byte
  std::int64_t snd_nxt{0};        // next byte to transmit
  std::int64_t max_sent{0};       // high-water mark (emissions below it are
                                  // retransmissions)
  std::int64_t cwnd{0};
  std::int64_t ssthresh{0};
  std::int64_t recover{0};        // NewReno recovery point
  std::int64_t rtx_next{-1};      // next hole to retransmit, -1 if none
  int dupacks{0};
  bool in_recovery{false};
  int backoff{0};                 // RTO exponential-backoff exponent
  bool rto_scheduled{false};      // one timer event outstanding at most
  core::TimePoint rto_deadline;
  core::TimePoint tx_clock;       // NIC/app-pacing serialization clock
  core::Duration pace_gap;        // application write pacing (0 = NIC rate)

  // -- DCTCP sender state (cc == kDctcp only; inert otherwise) --
  std::int64_t alpha_q16{0};            // EWMA mark fraction, Q16 fixed point
  std::int64_t ce_window_end{0};        // snd_nxt snapshot closing the current
                                        // observation window (~1 RTT of data)
  std::int64_t window_acked_bytes{0};   // bytes acked in the current window
  std::int64_t window_marked_bytes{0};  // subset acked with ECE set
  bool cwnd_reduced_this_window{false}; // at most one reduction per window

  // -- SACK sender scoreboard (recovery == kSack only; inert otherwise).
  // Sorted, disjoint, non-adjacent ranges of bytes the peer reported
  // received above snd_una. Bounded: a block that cannot merge into a full
  // list is dropped (never an existing range — the sacked set only shrinks
  // when snd_una advances past it). --
  static constexpr int kMaxSackRanges = 16;
  std::int64_t sack_lo[kMaxSackRanges] = {};
  std::int64_t sack_hi[kMaxSackRanges] = {};
  int sack_count{0};
  std::int64_t high_rtx{0};   // this episode's holes below this were resent
  bool rescue_done{false};    // at most one rescue retransmit per episode

  // -- receiver (the opposite endpoint of this direction) --
  std::int64_t rcv_nxt{0};
  bool ce_pending{false};  // CE seen since the last ACK; echo ECE next ACK
  static constexpr int kMaxOooRanges = 8;
  std::int64_t ooo_lo[kMaxOooRanges] = {};
  std::int64_t ooo_hi[kMaxOooRanges] = {};
  int ooo_count{0};
  int segs_since_ack{0};

  // -- accounting (bytes-conservation property tests) --
  std::int64_t retransmitted_bytes{0};
  std::int64_t switch_dropped_segments{0};

  [[nodiscard]] std::int64_t inflight() const { return snd_nxt - snd_una; }
};

struct TcpConnection {
  core::FiveTuple tuple;  // self -> peer orientation
  core::HostId self;
  core::HostId peer;
  std::uint32_t tag{0};   // (pool slot << 8) | generation
  std::uint64_t tuple_hash{0};
  ConnState state{ConnState::kClosed};
  bool close_pending{false};
  int hs_tries{0};
  bool hs_timer_scheduled{false};
  core::TimePoint hs_deadline;
  /// One-way delay beyond the RSW to the peer (zero for rack-local peers).
  core::Duration beyond;
  /// RSW egress -> peer -> response back at RSW ingress.
  core::Duration reply_delay;
  /// Per-transmission-attempt salt for the fault plan's path-loss draws.
  std::uint64_t loss_serial{0};
  HalfStream out;  // self -> peer bytes
  HalfStream in;   // peer -> self bytes
};

// ---- pure congestion-control laws (Reno/NewReno) ----

/// cwnd after a full ACK of `acked_bytes` new bytes outside recovery:
/// slow start below ssthresh (+acked per ACK), additive increase above
/// (+mss*mss/cwnd per ACK), capped at max_cwnd. Monotone non-decreasing.
[[nodiscard]] std::int64_t cwnd_after_ack(std::int64_t cwnd, std::int64_t ssthresh,
                                          std::int64_t acked_bytes, std::int64_t mss,
                                          std::int64_t max_cwnd);

/// Multiplicative decrease on entering fast recovery: returns the new
/// ssthresh = max(inflight/2, 2*mss).
[[nodiscard]] std::int64_t ssthresh_on_loss(std::int64_t inflight, std::int64_t mss);

/// Applies a 3-dupack fast retransmit: sets ssthresh, inflates cwnd by
/// dupack_threshold segments, records the recovery point, and marks the
/// first hole for retransmission.
void enter_fast_recovery(HalfStream& h, const TcpParams& p);

/// Applies a retransmission timeout: cwnd collapses to one segment,
/// ssthresh halves, transmission restarts from snd_una (go-back-N), and
/// the backoff exponent grows (capped).
void apply_rto(HalfStream& h, const TcpParams& p);

// ---- pure congestion-control laws (DCTCP, RFC 8257) ----
//
// All DCTCP arithmetic is integer fixed point (Q16: kDctcpAlphaUnit means
// alpha = 1.0) so runs are bit-identical across platforms, engines, and
// thread counts — the same determinism contract every other sim-path law
// obeys.

/// Q16 fixed-point unit for the DCTCP mark-fraction EWMA.
inline constexpr std::int64_t kDctcpAlphaUnit = 1 << 16;

/// One observation-window step of the alpha EWMA:
///   alpha' = alpha * (1 - 2^-g) + F * 2^-g,   F = marked/acked (Q16)
/// with g = gain_shift. Inputs are clamped (F to [0, 1], alpha' to
/// [0, kDctcpAlphaUnit]); acked_bytes <= 0 leaves alpha unchanged. The
/// decay term is floored at one Q16 unit so alpha converges to exactly 0
/// under sustained zero marking (mirroring Linux's min_not_zero decay).
[[nodiscard]] std::int64_t dctcp_alpha_update(std::int64_t alpha_q16,
                                              std::int64_t marked_bytes,
                                              std::int64_t acked_bytes, int gain_shift);

/// The once-per-window ECE reaction: cwnd' = cwnd * (1 - alpha/2), never
/// below one MSS. alpha = 1 halves the window (Reno-equivalent); alpha -> 0
/// leaves it nearly untouched.
[[nodiscard]] std::int64_t dctcp_cwnd_after_mark(std::int64_t cwnd, std::int64_t alpha_q16,
                                                 std::int64_t mss);

/// Receiver-side delivery of [seq, seq+len). Advances rcv_nxt, merging any
/// out-of-order ranges it bridges; out-of-window data is remembered in the
/// bounded range set (overflow is dropped — the sender simply retransmits
/// more). Returns true when the receiver must ACK immediately (gap, dup,
/// merge, or PSH) as opposed to the every-2nd-segment delayed-ACK policy.
bool receiver_deliver(HalfStream& h, std::int64_t seq, std::int64_t len, bool psh);

// ---- pure SACK laws (RFC 2018 receiver, RFC 6675 sender scoreboard) ----
//
// All state lives in the same HalfStream the Reno laws use, so the property
// suite exercises every law without a simulator, and runs stay bit-identical
// across engines and thread counts (integer arithmetic only).

/// One SACK block [lo, hi), byte-stream offsets. lo == hi means "no block".
struct SackBlock {
  std::int64_t lo{0};
  std::int64_t hi{0};
};

/// The block a delayed-ACK receiver attaches to the ACK it sends after
/// delivery of [seq, seq+len) (RFC 2018 first-block rule): the maximal
/// contiguous received range containing that segment when it landed out of
/// order — merging the bounded out-of-order set — otherwise the lowest
/// merged range still above rcv_nxt. {0, 0} when nothing is buffered.
[[nodiscard]] SackBlock receiver_sack_block(const HalfStream& h, std::int64_t seq,
                                            std::int64_t end);

/// Records one reported block on the sender scoreboard: clamps it to
/// [snd_una, max_sent), merges overlapping/adjacent ranges, keeps the list
/// sorted and disjoint. When the bounded list is full and the block cannot
/// merge, the NEW block is dropped (sacked ranges never silently un-sack).
/// Returns the number of newly-sacked bytes (0 for stale/duplicate blocks).
std::int64_t sack_record(HalfStream& h, std::int64_t lo, std::int64_t hi);

/// Crops the scoreboard at snd_una — cumulative-ACK advance is the only
/// transition that removes sacked bytes.
void sack_advance(HalfStream& h);

/// Bytes currently marked sacked (above snd_una).
[[nodiscard]] std::int64_t sack_sacked_bytes(const HalfStream& h);

/// Forward-most sacked byte (FACK); snd_una with an empty scoreboard.
[[nodiscard]] std::int64_t sack_fack(const HalfStream& h);

/// Bytes assumed lost: the unsacked bytes of [snd_una, fack).
[[nodiscard]] std::int64_t sack_lost_bytes(const HalfStream& h);

/// Estimate of retransmissions still in the network: the unsacked bytes of
/// [snd_una, min(high_rtx, fack)).
[[nodiscard]] std::int64_t sack_rtx_out_bytes(const HalfStream& h);

/// RFC-6675-style pipe: inflight − sacked − lost + rtx_out. The property
/// suite pins the identity and 0 <= pipe <= inflight on reachable states.
[[nodiscard]] std::int64_t sack_pipe(const HalfStream& h);

/// Whether a duplicate ACK should trigger SACK loss recovery. Beyond the
/// classic dupack count, the scoreboard enables two earlier detections a
/// blind counter cannot: RFC 6675 IsLost — at least dupack_threshold
/// segments sacked above snd_una prove the hole is a loss, not
/// reordering — and RFC 5827 early retransmit — windows of fewer than 4
/// segments can never produce 3 dupacks, so the threshold shrinks to
/// (outstanding − 1) when something is sacked. Both turn would-be RTO
/// stalls into dupack-driven repair.
[[nodiscard]] bool sack_should_enter_recovery(const HalfStream& h, const TcpParams& p);

/// Enters SACK loss recovery: ssthresh = cwnd = max(inflight/2, 2*mss),
/// recovery point at snd_nxt, per-episode retransmission state reset. No
/// NewReno window inflation and no rtx_next — sack_pipe gates transmission.
void enter_sack_recovery(HalfStream& h, const TcpParams& p);

/// What the SACK recovery pump should transmit next (RFC 6675 NextSeg):
/// rule 1 — the lowest unsacked hole at/above high_rtx below fack; rule 2 —
/// new data; rule 4 — once per episode, a rescue retransmit of the last
/// unsacked chunk below the recovery point (tail loss inside an episode
/// otherwise waits for the RTO). seq < 0 means nothing sendable.
struct SackNextSeg {
  std::int64_t seq{-1};
  std::int64_t len{0};
  bool is_rtx{false};
  bool rescue{false};
};
[[nodiscard]] SackNextSeg sack_next_seg(const HalfStream& h, std::int64_t mss);

/// The kSack retransmission timeout: clears the scoreboard and per-episode
/// state, then falls back to plain go-back-N (apply_rto).
void apply_rto_sack(HalfStream& h, const TcpParams& p);

}  // namespace fbdcsim::transport
