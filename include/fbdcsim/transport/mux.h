// TransportMux: the flow-level TCP engine of one simulated rack.
//
// Owns the per-host connection tables (keyed by 5-tuple, one TcpConnection
// per application connection, allocated from a core::Pool) and converts
// the byte demands services queue through the DemandSink interface into
// real packet streams: SYN/SYN-ACK/ACK handshakes, MSS-segmented data
// ACK-clocked by a Reno/NewReno congestion window, fast retransmit on
// duplicate ACKs, and RTO recovery — all driven by actual
// SharedBufferSwitch deliveries and drops plus the fault plan's
// beyond-the-RSW path-loss decisions. Packet sizes, SYN interarrivals and
// burst structure are therefore emergent, not scripted.
//
// Substitution model (one rack simulated, the rest of the fleet
// synthetic): each connection has two directed half-streams. The `out`
// half's sender runs on the modelled host — its segments really traverse
// the RSW (host_send), and the far receiver is synthesized at RSW egress,
// its ACKs re-entering after the connection's beyond-RSW round trip. The
// `in` half mirrors this: the remote sender runs inside the mux and its
// segments enter through host_receive at the monitored host's downlink —
// the exact fan-in point where shared-buffer congestion forms — while the
// modelled host acks them with real packets. Forward propagation beyond
// the RSW is folded into each half's feedback path, so first-byte timing
// matches the scripted path and the feedback-loop length equals the full
// path RTT.
//
// Engine contract (PR-4): every scheduled lambda fits sim::InlineAction's
// inline storage (events stay heap-free), connections recycle through a
// pool, and every telemetry metric is Kind::kSim — deterministic across
// engines and FBDCSIM_THREADS settings. In-flight packets carry
// `flow_tag` = (slot << 8) | generation; events resolving a stale tag
// (connection since recycled) are ignored.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fbdcsim/core/arena.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/topology/entities.h"
#include "fbdcsim/transport/demand.h"
#include "fbdcsim/transport/params.h"
#include "fbdcsim/transport/tcp.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::telemetry {
class FlowLedger;
class TimeSeriesProbe;
class TracePointLog;
}  // namespace fbdcsim::telemetry

namespace fbdcsim::transport {

class TransportMux final : public DemandSink {
 public:
  /// Aggregate counters, maintained across connection recycling (live
  /// connections' in-progress byte counts are NOT included — sum those via
  /// find_connection / for_each_connection).
  struct Stats {
    std::int64_t connections_created{0};
    std::int64_t connections_destroyed{0};
    std::int64_t handshakes_completed{0};
    std::int64_t handshake_failures{0};
    std::int64_t segments_sent{0};
    std::int64_t retransmit_segments{0};
    std::int64_t fast_retransmits{0};
    std::int64_t rto_fired{0};
    std::int64_t path_loss_drops{0};
    std::int64_t switch_drop_notifications{0};
    std::int64_t bytes_demanded{0};
    std::int64_t bytes_delivered{0};  // receiver-side in-order advance
    std::int64_t bytes_retransmitted{0};
    // Retransmissions split by repair kind (all recovery modes): a segment
    // resent while its half-stream is in fast recovery was dupack-driven;
    // anything else is the go-back-N stream after a timeout.
    std::int64_t rtx_dupack_segments{0};
    std::int64_t rtx_rto_segments{0};
    // SACK (recovery == kSack only; zero otherwise):
    std::int64_t sack_blocks_recorded{0};    // scoreboard merges that added bytes
    std::int64_t sack_bytes{0};              // bytes newly marked sacked
    std::int64_t sack_retransmits{0};        // pipe-gated hole retransmissions
    std::int64_t sack_rescue_retransmits{0}; // rule-4 tail rescues
    // DCTCP (cc == kDctcp only; zero otherwise):
    std::int64_t ecn_ce_segments{0};       // CE-marked data seen at receivers
    std::int64_t ecn_echoed_acks{0};       // ACKs sent with ECE set
    std::int64_t dctcp_cwnd_reductions{0}; // once-per-window ECE reactions
  };

  /// `sink` is the rack simulation (must outlive the mux); `faults` may be
  /// null. `seed` salts nothing today but pins the constructor signature
  /// for future per-run randomization knobs.
  TransportMux(sim::Simulator& sim, const topology::Fleet& fleet,
               services::TrafficSink& sink, TcpParams params,
               const faults::FaultPlan* faults, std::uint64_t seed);
  ~TransportMux() override;

  TransportMux(const TransportMux&) = delete;
  TransportMux& operator=(const TransportMux&) = delete;

  // ---- DemandSink (called by services::Wire) ----
  void open(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
            core::TimePoint start) override;
  void open_inbound(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                    core::TimePoint start) override;
  void app_send(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                std::int64_t bytes, core::TimePoint start,
                core::Duration pace_gap) override;
  void app_receive(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                   std::int64_t bytes, core::TimePoint start,
                   core::Duration pace_gap) override;
  void app_close(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                 core::TimePoint start) override;

  // ---- switch callbacks (wired up by the rack simulation) ----
  /// A packet finished transmission on some RSW egress port.
  void on_delivered(const core::SimPacket& packet);
  /// DT admission rejected a packet (a real shared-buffer drop) on the
  /// given egress port — the causal fact the flow ledger attributes
  /// retransmissions to.
  void on_dropped(std::size_t port, const core::SimPacket& packet);

  // ---- observability (wired up by the rack simulation) ----
  /// Installs (or clears) the tracepoint sink for RTO fires, fast-recovery
  /// transitions, and handshake retries. Null by default (zero cost).
  void set_trace_log(telemetry::TracePointLog* log) { trace_log_ = log; }
  /// Installs (or clears) the per-flow lifecycle ledger (FBDCSIM_OBS=flows).
  /// Null by default — every hook site is a single pointer test, so runs
  /// without the opt-in stay byte-identical. `switch_id` stamps switch-drop
  /// attributions; `switch_drop_fault_epoch` is the kFaultEpoch* code when a
  /// faults/ decision (buffer shrink) is in force, -1 otherwise.
  void set_flow_ledger(telemetry::FlowLedger* ledger, std::uint64_t switch_id = 0,
                       std::int64_t switch_drop_fault_epoch = -1) {
    flow_ledger_ = ledger;
    ledger_switch_id_ = switch_id;
    switch_drop_fault_epoch_ = switch_drop_fault_epoch;
  }
  /// Registers the mux's sim-time gauges on `probe`: live connection count
  /// and the out-half cwnd/ssthresh/inflight aggregates plus pending-RTO
  /// timer count, summed over live connections in slot order. The sums are
  /// O(live connections) per sample — a Web rack holds ~10^4 — so every
  /// gauge here registers with `stride` (ObsConfig::transport_stride) to
  /// stay off the probe's full-rate cadence.
  void register_probes(telemetry::TimeSeriesProbe& probe, std::int64_t stride) const;

  // ---- introspection (tests, benches) ----
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t live_connections() const;
  /// The connection for a tuple (self -> peer orientation), or null.
  [[nodiscard]] const TcpConnection* find_connection(const core::FiveTuple& tuple) const;
  /// Visits live connections in slot order (deterministic).
  template <typename F>
  void for_each_connection(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.live) f(*s.conn);
    }
  }

 private:
  struct Slot {
    TcpConnection* conn{nullptr};
    std::uint8_t gen{0};
    bool live{false};
  };
  enum class Dir : std::uint8_t { kOut = 0, kIn = 1 };
  /// Control packets / bookkeeping steps small enough to share one event
  /// shape. kXxxOut emits via host_send, kXxxIn via host_receive.
  enum class Ctrl : std::uint8_t {
    kBeginOpen,     // self's handshake starts (emit SYN)
    kBeginInbound,  // peer's SYN arrives at the RSW
    kSynAckIn,      // peer's SYN-ACK arrives (outbound open)
    kHsAckIn,       // peer's final handshake ACK arrives (inbound open)
    kFinAckIn,      // peer's FIN-ACK arrives
    kClose,         // application close requested
  };

  TcpConnection* resolve(std::uint32_t tag);
  TcpConnection& ensure(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                        ConnState initial);
  void release(TcpConnection& c);
  [[nodiscard]] HalfStream& half(TcpConnection& c, Dir dir) const {
    return dir == Dir::kOut ? c.out : c.in;
  }

  [[nodiscard]] core::Duration rto_for(const TcpConnection& c, const HalfStream& h) const;
  [[nodiscard]] bool path_lost(TcpConnection& c);

  void establish(TcpConnection& c);
  void on_ctrl(std::uint32_t tag, Ctrl ctrl);
  void on_demand(std::uint32_t tag, Dir dir, std::int64_t bytes, core::Duration pace_gap);
  void on_ack_at_sender(TcpConnection& c, Dir dir, std::int64_t ackno, bool ece,
                        std::int64_t sack_lo = 0, std::int64_t sack_hi = 0);
  void on_data_at_receiver(TcpConnection& c, Dir dir, std::int64_t seq, std::int64_t len,
                           bool psh, bool ce);
  void on_rto_event(std::uint32_t tag, Dir dir);
  void on_hs_event(std::uint32_t tag);
  void pump(TcpConnection& c, Dir dir);
  /// The kSack in-recovery transmission loop: sends whatever sack_next_seg
  /// selects while sack_pipe stays below cwnd (RFC 6675 §5 step C).
  void pump_sack_recovery(TcpConnection& c, Dir dir);
  /// Sends one sack_next_seg selection and applies its bookkeeping
  /// (high_rtx / rescue flag / snd_nxt advance plus the sack counters).
  void send_sack_selected(TcpConnection& c, Dir dir, const SackNextSeg& ns);
  void try_close(TcpConnection& c);
  void arm_rto(TcpConnection& c, Dir dir);
  void arm_hs(TcpConnection& c);

  /// Schedules the paced emission of one data segment.
  void send_segment(TcpConnection& c, Dir dir, std::int64_t seq, std::int64_t len);
  /// Emits a packet on the wire right now. Data/ACK/control alike; `dir`
  /// picks host_send (kOut) vs host_receive (kIn). A nonempty SACK block
  /// (sack_hi > sack_lo) rides on the packet and grows its frame by the
  /// option bytes.
  void emit_now(TcpConnection& c, Dir dir, std::int64_t payload, core::TcpFlags flags,
                std::int64_t seq, std::int64_t ackno, std::int64_t sack_lo = 0,
                std::int64_t sack_hi = 0);

  sim::Simulator* sim_;
  const topology::Fleet* fleet_;
  services::TrafficSink* sink_;
  TcpParams params_;
  const faults::FaultPlan* faults_;
  bool faults_enabled_{false};
  telemetry::TracePointLog* trace_log_{nullptr};
  telemetry::FlowLedger* flow_ledger_{nullptr};
  std::uint64_t ledger_switch_id_{0};
  std::int64_t switch_drop_fault_epoch_{-1};

  core::Arena arena_;
  core::Pool<TcpConnection> pool_{arena_};
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<core::FiveTuple, std::uint32_t> by_tuple_;
  Stats stats_;
};

}  // namespace fbdcsim::transport
