// The byte-demand interface between service models and the flow-level TCP
// transport. Header-only and dependent only on core/ so the services layer
// can consume it without linking (or even seeing) the transport library:
// services hand application-level byte demands to a DemandSink; the
// concrete TransportMux (transport/mux.h) turns them into SYN/ACK/MSS
// packet streams with real congestion dynamics.
//
// All tuples are oriented self -> peer, matching the services::Connection
// invariant; `self` is always a host of the modelled rack.
#pragma once

#include <cstdint>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"

namespace fbdcsim::transport {

class DemandSink {
 public:
  virtual ~DemandSink() = default;

  /// Self initiates a connection at `start` (SYN / SYN-ACK / ACK emitted as
  /// real packets). Connections first seen through app_send/app_receive are
  /// treated as long-lived pooled connections whose handshake predates the
  /// run — mirroring the scripted path, where only ephemeral connections
  /// emit SYNs.
  virtual void open(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                    core::TimePoint start) = 0;

  /// The peer initiates a connection to self at `start`.
  virtual void open_inbound(const core::FiveTuple& tuple, core::HostId self,
                            core::HostId peer, core::TimePoint start) = 0;

  /// The application on self queues `bytes` for the peer at `start`.
  /// `pace_gap` is the application's write pacing (time per MSS of bytes it
  /// makes available — disk-bound Hadoop streams hand the socket data far
  /// slower than the NIC could drain it); emission is further limited by
  /// the congestion window and NIC serialization.
  virtual void app_send(const core::FiveTuple& tuple, core::HostId self, core::HostId peer,
                        std::int64_t bytes, core::TimePoint start,
                        core::Duration pace_gap) = 0;

  /// The application on the peer queues `bytes` for self at `start`.
  virtual void app_receive(const core::FiveTuple& tuple, core::HostId self,
                           core::HostId peer, std::int64_t bytes, core::TimePoint start,
                           core::Duration pace_gap) = 0;

  /// Self closes the connection at `start` (FIN exchange once both
  /// directions drain).
  virtual void app_close(const core::FiveTuple& tuple, core::HostId self,
                         core::HostId peer, core::TimePoint start) = 0;
};

}  // namespace fbdcsim::transport
