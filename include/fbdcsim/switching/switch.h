// Output-queued shared-buffer switch model.
//
// Models what Section 6.3 measures: a top-of-rack switch whose egress ports
// share a common packet buffer under dynamic-threshold admission. Provides
// per-port SNMP-style counters (tx bytes/packets, egress drops) and supports
// the 10-microsecond buffer-occupancy sampling used for Figure 15.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fbdcsim/core/arena.h"
#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"
#include "fbdcsim/sim/simulator.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::telemetry {
class TimeSeriesProbe;
class TracePointLog;
}  // namespace fbdcsim::telemetry

namespace fbdcsim::switching {

/// A packet in flight through the simulated rack. The canonical definition
/// lives in core/packet.h so services and transport can share it without
/// depending on the switching layer.
using SimPacket = core::SimPacket;

/// Per-port cumulative counters, in the style of SNMP interface MIBs.
struct PortCounters {
  std::int64_t tx_packets{0};
  std::int64_t tx_bytes{0};
  std::int64_t enqueued_packets{0};
  std::int64_t dropped_packets{0};
  std::int64_t dropped_bytes{0};
  /// Total time packets spent queued before their first bit left (ns);
  /// queuing_delay_ns / tx_packets is the mean queuing delay.
  std::int64_t queuing_delay_ns{0};
  std::int64_t max_queuing_delay_ns{0};
  /// Packets rewritten ECT -> CE on enqueue (zero unless the config sets
  /// an ecn_threshold and a DCTCP sender stamped ECT).
  std::int64_t ecn_marked_packets{0};
};

struct SwitchConfig {
  std::size_t num_ports{0};
  /// Total shared packet buffer. Commodity ToR chips of the paper's era
  /// shipped ~12 MB of shared buffer (e.g. Trident II).
  core::DataSize buffer_total = core::DataSize::megabytes(12);
  /// Dynamic-threshold alpha: a packet is admitted to port q only if
  /// q's queue depth < alpha * (free buffer). Standard DT admission.
  double dt_alpha = 1.0;
  /// Egress capacity per port (uniform; override per port after creation).
  core::DataRate port_rate = core::DataRate::gigabits_per_sec(10);
  /// ECN marking threshold K on the SHARED buffer: an admitted ECT packet
  /// is rewritten to CE when the occupancy it lands in exceeds K
  /// (mark-on-enqueue, DCTCP-style step marking). Zero disables marking —
  /// the default, so every existing configuration is byte-identical.
  /// Non-ECT packets are never marked regardless of K.
  core::DataSize ecn_threshold = core::DataSize::bytes(0);
};

/// The marking decision, exposed as a pure function so the property suite
/// can exercise it without a switch: mark iff marking is enabled
/// (threshold > 0), the packet is ECN-capable, and the shared-buffer
/// occupancy AFTER admitting the packet exceeds the threshold. Monotone in
/// the threshold: raising K can only unmark packets, never mark new ones.
[[nodiscard]] constexpr bool ecn_should_mark(std::int64_t buffered_bytes_after,
                                             std::int64_t threshold_bytes, core::Ecn ecn) {
  return threshold_bytes > 0 && ecn != core::Ecn::kNotEct &&
         buffered_bytes_after > threshold_bytes;
}

/// Applies a fault plan's switch-level faults to a config before the switch
/// is built: the shared buffer shrinks by the plan's per-run factor (keyed
/// on `run_salt`, normally the simulation seed). Returns the factor applied
/// (1.0 when the plan is null, disabled, or spares this run); shrunken runs
/// bump the "switch.buffer_shrunk_runs" telemetry counter. Deterministic:
/// the same (plan seed, run_salt) always shrinks — or spares — the run.
double apply_fault_profile(SwitchConfig& config, const faults::FaultPlan* plan,
                           std::uint64_t run_salt);

/// The switch. Egress-port selection is the caller's job (the rack model
/// knows the topology); the switch models buffering, admission, drops, and
/// store-and-forward serialization, delivering each packet to the sink
/// callback when its last bit leaves the egress port.
class SharedBufferSwitch {
 public:
  /// Called when a packet completes transmission on `port`.
  using DeliverFn = std::function<void(std::size_t port, const SimPacket&)>;
  /// Called when DT admission rejects a packet at `port` (after the drop is
  /// counted). Lets transport models react to actual shared-buffer drops.
  using DropFn = std::function<void(std::size_t port, const SimPacket&)>;

  SharedBufferSwitch(sim::Simulator& sim, SwitchConfig config, DeliverFn deliver);

  /// Installs (or clears) the drop-notification hook. Null by default: the
  /// scripted path never pays for the callback.
  void set_drop_hook(DropFn on_drop) { on_drop_ = std::move(on_drop); }

  /// Offers a packet to egress `port` at the current simulated time.
  /// Returns false (and counts a drop) if DT admission rejects it.
  bool enqueue(std::size_t port, const SimPacket& packet);

  /// Bytes currently buffered across all ports.
  [[nodiscard]] core::DataSize buffer_occupancy() const {
    return core::DataSize::bytes(buffered_bytes_);
  }
  /// Occupancy as a fraction of the configured shared buffer.
  [[nodiscard]] double buffer_occupancy_fraction() const {
    return static_cast<double>(buffered_bytes_) /
           static_cast<double>(config_.buffer_total.count_bytes());
  }

  [[nodiscard]] core::DataSize queue_depth(std::size_t port) const {
    return core::DataSize::bytes(ports_.at(port).queued_bytes);
  }

  [[nodiscard]] const PortCounters& counters(std::size_t port) const {
    return ports_.at(port).counters;
  }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] const SwitchConfig& config() const { return config_; }

  void set_port_rate(std::size_t port, core::DataRate rate) { ports_.at(port).rate = rate; }

  /// Installs (or clears) the tracepoint sink. Null by default — the
  /// non-observed path pays one pointer compare per drop, nothing more.
  void set_trace_log(telemetry::TracePointLog* log) { trace_log_ = log; }

  /// Registers this switch's sim-time gauges on `probe`: shared-buffer
  /// occupancy, per-port queue depth, and cumulative tx bytes. The switch
  /// must outlive the probe's sampling.
  void register_probes(telemetry::TimeSeriesProbe& probe) const;

 private:
  struct Queued {
    SimPacket packet;
    core::TimePoint arrival;
  };
  struct Port {
    core::PoolQueue<Queued> queue;
    std::int64_t queued_bytes{0};
    bool transmitting{false};
    core::DataRate rate;
    PortCounters counters;
  };

  void start_transmission(std::size_t port_index);

  sim::Simulator* sim_;
  SwitchConfig config_;
  DeliverFn deliver_;
  DropFn on_drop_;
  telemetry::TracePointLog* trace_log_{nullptr};
  // Packet queue nodes come from the switch's arena and recycle through the
  // pool free list, so steady-state enqueue/dequeue never calls malloc.
  // Declared before ports_ so queues are destroyed before their pool.
  core::Arena arena_;
  core::Pool<core::PoolQueue<Queued>::Node> node_pool_{arena_};
  std::vector<Port> ports_;
  std::int64_t buffered_bytes_{0};
};

/// Samples a switch's shared-buffer occupancy on a fixed period (default
/// 10 us, matching the paper's FBOSS counter collection) and aggregates
/// per-second median/maximum — the exact series of Figure 15a. Per-second
/// aggregation uses a fixed-resolution occupancy histogram so day-long runs
/// use constant memory.
class BufferOccupancySampler {
 public:
  struct SecondStats {
    std::int64_t second{0};     // seconds since run start
    double median_fraction{0};  // median of the second's samples
    double max_fraction{0};     // max of the second's samples
  };

  BufferOccupancySampler(sim::Simulator& sim, const SharedBufferSwitch& sw,
                         core::Duration period = core::Duration::micros(10));

  [[nodiscard]] std::span<const SecondStats> per_second() const { return seconds_; }
  [[nodiscard]] std::int64_t samples_taken() const { return samples_; }

  /// Flushes the in-progress second (call once after the run completes).
  void finish();

 private:
  static constexpr std::size_t kBins = 4096;

  void on_sample(core::TimePoint now);
  void flush_second();

  const SharedBufferSwitch* switch_;
  sim::PeriodicTimer timer_;
  std::vector<std::int64_t> histogram_ = std::vector<std::int64_t>(kBins, 0);
  std::int64_t in_second_samples_{0};
  double in_second_max_{0.0};
  std::int64_t current_second_{0};
  std::int64_t samples_{0};
  std::vector<SecondStats> seconds_;
};

}  // namespace fbdcsim::switching
