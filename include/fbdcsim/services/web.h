// Web-server traffic model (Sections 3.2, 4.2; Table 2 row "Web").
//
// A Web server is stateless. Per user request it: receives the request from
// an SLB, issues a burst of cache gets fanned uniformly over the cluster's
// cache followers, makes a couple of Multifeed/ads calls, and returns the
// page to the SLB. A separate background process emits miscellaneous
// traffic to Service hosts across the datacenter and other datacenters.
//
// Emergent behaviours this model must reproduce (validated in tests and
// benches): the Table 2 outbound mix, Figure 4's flat cluster-dominated
// locality, sub-200-byte median packets (Figure 12), ~2 ms median SYN
// interarrival (Figure 14), internally bursty long-lived flows (§5.1), and
// 10s-to-100s of concurrent destination racks (Figure 16a).
//
// The model is transport-agnostic: all wire traffic goes through Wire,
// which either scripts packets directly (default) or hands demand to the
// flow-level TCP engine (RackSimConfig::transport = kTcp; DESIGN.md §10).
#pragma once

#include <memory>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/services/connections.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/peer_selection.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

class WebServerModel : public TrafficModel {
 public:
  WebServerModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                 core::RngStream rng);

  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_user_request();
  void serve_user_request();
  void schedule_next_misc();
  void schedule_next_ephemeral();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;

  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal slb_response_;
  core::LogNormal hot_response_;
  core::LogNormal cold_response_;
  core::LogNormal cache_response_;  // used for ephemeral one-shot gets
  std::vector<core::HostId> misc_peers_;
  /// Object popularity for cache reads: gets are routed to followers by
  /// consistent hashing on the key, so a Web server's instantaneous
  /// per-follower demand is popularity-skewed even though the *aggregate*
  /// load each follower sees (over all Web servers) is balanced. This is
  /// what keeps instantaneous heavy hitters poorly predicted by the
  /// enclosing second (Figure 11).
  std::unique_ptr<core::Zipf> object_popularity_;

  sim::Simulator* sim_{nullptr};
  TrafficSink* sink_{nullptr};
  std::unique_ptr<Wire> wire_;
  double misc_bytes_per_sec_{0.0};
};

}  // namespace fbdcsim::services
