// The endpoint-centric traffic-model framework.
//
// A TrafficModel synthesizes the packet streams observed at one monitored
// host: everything the host sends, and everything that arrives for it from
// peers outside its rack. (Intra-rack arrivals are produced by the rack
// neighbours' own models, so rack-local traffic is never double-counted;
// see workload/rack_sim.h.) This mirrors the paper's methodology exactly —
// port mirroring sees one host's bidirectional stream — and lets a 2-minute
// trace of a 300-rack fleet cost only the monitored rack's packets.
#pragma once

#include "fbdcsim/core/packet.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/transport/demand.h"

namespace fbdcsim::services {

using core::SimPacket;

/// Where a model's packets go. Implemented by the rack simulation.
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;

  /// A packet leaves the model's host NIC at the current simulated time.
  virtual void host_send(const SimPacket& packet) = 0;

  /// A packet from outside the rack arrives at the RSW destined to the
  /// model's host at the current simulated time.
  virtual void host_receive(const SimPacket& packet) = 0;

  /// The flow-level transport engine, when the sink runs one (TCP mode).
  /// Null means scripted mode: services emit pre-shaped packet timelines
  /// directly. When non-null, services::Wire routes byte demands through
  /// it instead and the packet structure becomes emergent.
  virtual transport::DemandSink* transport() { return nullptr; }
};

/// A per-host traffic generator. Implementations are the per-role service
/// models (web.h, cache.h, hadoop.h, backend.h).
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  TrafficModel() = default;
  TrafficModel(const TrafficModel&) = delete;
  TrafficModel& operator=(const TrafficModel&) = delete;

  /// Begins generating traffic. The model must only schedule events at or
  /// after the current simulated time and deliver packets through `sink`
  /// (which must outlive the simulation run).
  virtual void start(sim::Simulator& sim, TrafficSink& sink) = 0;
};

}  // namespace fbdcsim::services
