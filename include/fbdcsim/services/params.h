// Calibrated per-service model parameters.
//
// Every number here is tied to a specific statement in the paper; the
// defaults are the repo's calibration to reproduce the published shapes
// (see DESIGN.md §5 and EXPERIMENTS.md for paper-vs-measured values).
// Experiments change behaviour ONLY through these structs, so ablations are
// single-field edits.
#pragma once

#include <cstdint>

#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::services {

using core::DataSize;
using core::Duration;

/// Web servers (Section 3.2, Table 2 row "Web").
///
/// A Web server is stateless: per user request it performs a burst of cache
/// reads, a couple of backend (Multifeed/ads) calls, and returns the page
/// through the SLB. Its outbound byte mix must land near Table 2:
/// cache 63.1%, Multifeed 15.2%, SLB 5.6%, rest 16.1%.
struct WebParams {
  /// User (SLB-forwarded) requests served per second per Web server.
  /// Calibrated with the flow-intensity observation of §6.2: Web servers
  /// see >500 flows/s with median SYN interarrival ~2 ms; user requests
  /// plus internal fan-out produce that rate.
  double user_requests_per_sec = 350.0;

  /// Cache gets issued per user request (news feed loads touch a vast
  /// array of objects; §4.3). Mean of a geometric-like burst.
  double cache_gets_per_request_mean = 40.0;
  /// Bytes of a single get request (key + protocol overhead).
  DataSize cache_get_request = DataSize::bytes(520);
  /// Server think time between receiving a user request and the cache burst.
  Duration think_time = Duration::micros(150);
  /// Spacing of gets within a fan-out burst. Real Web servers emit the
  /// burst at NIC line rate (TCP windows go back-to-back), which is what
  /// creates microsecond-scale fan-in pressure on RSW buffers despite ~1%
  /// average utilization (§6.3).
  Duration burst_gap = Duration::nanos(500);

  /// Multifeed/ads calls per user request and request size.
  double multifeed_calls_per_request_mean = 2.0;
  DataSize multifeed_request = DataSize::bytes(3000);

  /// Response returned to the SLB per user request (compressed HTML).
  DataSize slb_response_mean = DataSize::bytes(2200);
  double slb_response_sigma = 0.6;  // log-normal sigma

  /// Miscellaneous background traffic ("Rest" in Table 2): logging,
  /// config, service discovery — destined to Service hosts across the DC
  /// and other datacenters.
  double misc_bytes_fraction = 0.16;
  DataSize misc_message = DataSize::bytes(1400);

  /// Connection pool: pooled connections persist far beyond any capture
  /// (§5.1). A separate Poisson process of ephemeral one-shot exchanges
  /// produces the ~2 ms median SYN interarrival of Figure 14 (>500 new
  /// flows per second).
  double ephemeral_per_sec = 500.0;
};

/// Cache followers (Table 2 row "Cache-f": Web 88.7%, Cache 5.8%, rest 5.5%).
///
/// Followers answer reads from Web servers spread across the whole cluster
/// (the paper: one follower talks to >75% of cluster hosts, >90% of Web
/// servers, in two minutes) and fill misses from leaders.
struct CacheFollowerParams {
  /// Read requests served per second (drives response traffic).
  double gets_served_per_sec = 90000.0;
  /// Object (response) size: log-normal with small median — median packet
  /// size for cache traffic is <200 B (Figure 12).
  DataSize object_median = DataSize::bytes(175);
  double object_sigma = 1.1;
  /// Fraction of gets that miss and are refilled from a cache leader.
  double miss_rate = 0.05;
  /// Size of a leader fill response (object plus metadata).
  DataSize fill_request = DataSize::bytes(300);
  /// Miscellaneous background share of outbound bytes.
  double misc_bytes_fraction = 0.055;
  DataSize misc_message = DataSize::bytes(1200);
  /// Ephemeral-connection share (most traffic rides pooled connections;
  /// cache SYN interarrival median ~8 ms, Figure 14).
  double ephemeral_per_sec = 125.0;  // Fig 14: ~8 ms median interarrival
};

/// Cache leaders (Table 2 row "Cache-l": Cache 86.6%, MF 5.9%, rest 7.5%).
///
/// Leaders maintain coherency across clusters and write back to databases;
/// their traffic is mostly intra/inter-datacenter (Figure 4, Table 3).
struct CacheLeaderParams {
  /// Coherency/fill messages per second to followers (fleet-wide clusters).
  double coherency_msgs_per_sec = 40000.0;
  DataSize coherency_msg_median = DataSize::bytes(450);
  double coherency_sigma = 1.0;
  /// Database reads/writebacks per second and sizes.
  double db_ops_per_sec = 1200.0;
  DataSize db_op_size = DataSize::bytes(1600);
  /// Multifeed invalidation share.
  double multifeed_share = 0.10;
  DataSize multifeed_msg = DataSize::bytes(700);
  double misc_bytes_fraction = 0.075;
  DataSize misc_message = DataSize::bytes(1200);
  /// Ephemeral SYN rate (median interarrival ~3 ms, Figure 14).
  double ephemeral_per_sec = 330.0;
};

/// Hadoop nodes (Section 4.2): MapReduce + HDFS.
///
/// Traffic alternates between quiet computation and network-heavy shuffle /
/// output phases; 99.8% of bytes go to other Hadoop hosts, with strong rack
/// locality (75.7% intra-rack in the paper's busy trace) and the rest
/// spread over most racks of the cluster.
struct HadoopParams {
  /// Mean duration of compute (quiet) and shuffle (busy) periods.
  Duration quiet_period_mean = Duration::seconds(12);
  Duration busy_period_mean = Duration::seconds(20);
  /// During a busy period, bulk-transfer launch rate and size distribution
  /// (most flows small, heavy tail; Figure 6c: 70% <10 KB, <5% >1 MB).
  /// Transfers ride ephemeral connections, so this rate is also the SYN
  /// rate (Figure 14: Hadoop median SYN interarrival ~2 ms => >500/s).
  double transfers_per_sec_busy = 650.0;
  DataSize transfer_median = DataSize::bytes(1200);
  double transfer_sigma = 2.45;
  DataSize transfer_cap = DataSize::megabytes(64);
  /// Probability a monitored busy node's transfer is rack-local. The
  /// paper reports 75.7% for its (busy) port-mirrored node (§4.2)...
  double rack_local_fraction = 0.757;
  /// ...but fleet-wide, concurrent jobs and external data consumers pull
  /// the Hadoop service's rack-local byte share down to 13.3% (Table 3).
  /// The fleet-level flow generator uses this average.
  double fleet_rack_local_fraction = 0.16;
  /// Fraction of the cluster's hosts this node exchanges data with
  /// (Kandula-style 1-10%; paper: 1.5% of servers across 95% of racks).
  double partner_fraction = 0.015;
  /// Concurrent shuffle-fetch / HDFS-pipeline streams held open during a
  /// busy phase. These standing streams are why a Hadoop node shows ~25
  /// concurrent connections in 5-ms windows (§6.4) despite short flows
  /// dominating by count.
  int shuffle_streams = 20;
  DataSize stream_chunk_median = DataSize::kilobytes(8);
  double stream_chunk_sigma = 0.8;
  Duration stream_interval_mean = Duration::millis(4);
  /// Background control plane: heartbeats and job-tracker RPCs.
  double control_msgs_per_sec = 18.0;
  DataSize control_msg = DataSize::bytes(400);
  /// Fraction of bytes leaving the Hadoop service (Table 2: 0.2%).
  double misc_bytes_fraction = 0.002;
};

/// Multifeed backends: answer Web aggregation calls (news-feed assembly).
struct MultifeedParams {
  double requests_served_per_sec = 700.0;
  DataSize response_median = DataSize::bytes(2000);
  double response_sigma = 0.9;
  double misc_bytes_fraction = 0.05;
};

/// Software load balancers: forward user requests in, pages out.
struct SlbParams {
  double user_requests_per_sec = 900.0;
  DataSize request_size = DataSize::bytes(900);
  double misc_bytes_fraction = 0.04;
};

/// Database servers: serve cache-leader reads/writebacks, replicate across
/// datacenters (Table 3 DB row: bytes split ~evenly cluster/DC/inter-DC).
struct DatabaseParams {
  double queries_served_per_sec = 200.0;
  DataSize response_median = DataSize::bytes(2500);
  double response_sigma = 1.2;
  double replication_bytes_fraction = 0.75;
  DataSize replication_message = DataSize::bytes(5000);
};

/// Miscellaneous Service hosts (the paper's "Svc." cluster type): search,
/// ads backends, logging aggregation, and other supporting tiers. Their
/// locality mix is the paper's Svc row (12.1 rack / 56.3 cluster /
/// 15.7 DC / 15.9 inter-DC) and they carry real volume (18% of fleet
/// traffic).
struct ServiceParams {
  double messages_per_sec = 2700.0;
  DataSize message = DataSize::bytes(1100);
  double rack_weight = 0.121;
  double cluster_weight = 0.563;
  double dc_weight = 0.157;
  double interdc_weight = 0.159;
};

/// Hot-object load management (§5.2): bursts of requests for one object
/// cause the follower to ask Web servers to cache it briefly; sustained
/// heat replicates the object/shard across followers. The effect measured
/// in Figure 8c is rate stability; the ablation bench disables this.
struct HotObjectParams {
  bool mitigation_enabled = true;
  /// Object popularity: a small hot head (frequently requested, small
  /// objects — counters, ids, edges) over a large cold tail (rarely
  /// requested, larger payloads). The split is what decorrelates
  /// *instantaneous* heavy hitters (a big cold response happens to land in
  /// this millisecond) from *sustained* ones (steady small-object demand),
  /// producing the poor subinterval/second heavy-hitter overlap of
  /// Figure 11.
  std::size_t num_objects = 20000;
  double zipf_exponent = 1.4;
  std::size_t hot_head = 64;
  DataSize hot_object_median = DataSize::bytes(160);
  double hot_object_sigma = 0.5;
  DataSize cold_object_median = DataSize::bytes(320);
  double cold_object_sigma = 1.3;
  /// Requests/s for one object that trigger web-side caching.
  double web_cache_threshold_rps = 60.0;
  /// Sustained requests/s triggering replication to peer followers.
  double replicate_threshold_rps = 40.0;
  /// Median lifetime of entries in the top-50 hot list (paper: minutes).
  Duration hot_lifetime = Duration::minutes(3);
};

/// Aggregate per-run knobs shared by the rack-level simulations.
struct ServiceMix {
  WebParams web;
  CacheFollowerParams cache_follower;
  CacheLeaderParams cache_leader;
  HadoopParams hadoop;
  MultifeedParams multifeed;
  SlbParams slb;
  DatabaseParams database;
  ServiceParams service;
  HotObjectParams hot_objects;

  /// Global switches used by ablation benches.
  bool load_balancing_enabled = true;    // user-request spreading (§5.2)
  bool connection_pooling_enabled = true;  // pooled long-lived flows (§5.1)
};

}  // namespace fbdcsim::services
