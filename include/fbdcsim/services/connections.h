// Connection management and TCP packetization for the service models.
//
// ConnectionTable hands out pooled (long-lived, stable 5-tuple) and
// ephemeral (SYN/FIN-delimited) connections, reproducing the paper's §5.1
// observation that most service traffic rides pooled connections while a
// steady rate of ephemeral flows produces the SYN-interarrival pattern of
// Figure 14. Wire helpers segment transaction payloads into MTU-bounded
// frames with delayed ACKs in the reverse direction.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/core/units.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

/// One transport connection between the modelled host and a peer.
/// Invariant: `tuple` is always oriented self -> peer, regardless of which
/// side initiated the connection (inbound-initiated connections simply have
/// the well-known port on the self side).
struct Connection {
  core::FiveTuple tuple;
  core::HostId peer;
  bool pooled{true};
};

/// Allocates connections for one modelled host. Source ports are assigned
/// deterministically from the ephemeral range.
class ConnectionTable {
 public:
  ConnectionTable(const topology::Fleet& fleet, core::HostId self)
      : fleet_{&fleet}, self_{self} {}

  /// The pooled connection to (peer, service port), created on first use.
  Connection& pooled(core::HostId peer, core::Port dst_port);

  /// A fresh ephemeral connection (new source port each call).
  [[nodiscard]] Connection ephemeral(core::HostId peer, core::Port dst_port);

  /// A fresh inbound-initiated ephemeral connection: the well-known port
  /// `self_port` is on the self side, the peer uses a fresh ephemeral port.
  /// (Tuple stays self -> peer per the Connection invariant; use with
  /// Wire::open_inbound, which emits the peer's SYN on the reverse path.)
  [[nodiscard]] Connection ephemeral_inbound(core::HostId peer, core::Port self_port);

  /// The pooled connection initiated by peer toward self, created on first
  /// use. Tuple orientation is self -> peer like every Connection.
  Connection& pooled_inbound(core::HostId peer, core::Port self_port);

  [[nodiscard]] core::HostId self() const { return self_; }
  [[nodiscard]] std::size_t pooled_count() const { return pool_.size(); }

 private:
  [[nodiscard]] core::FiveTuple make_tuple(core::HostId peer, core::Port dst_port,
                                           core::Port src_port) const;

  const topology::Fleet* fleet_;
  core::HostId self_;
  core::Port next_port_{core::ports::kEphemeralBase};
  std::unordered_map<std::uint64_t, Connection> pool_;
};

/// Emits the packet streams of application-level transactions over a
/// connection, handling MTU segmentation, delayed ACKs, handshakes and
/// teardown. "Outbound" means the modelled host transmits; "inbound" means
/// packets arrive from the network for the modelled host.
///
/// Two backends share this interface. When the sink exposes no transport
/// (scripted mode), Wire emits the pre-shaped packet timeline itself —
/// byte-identical to the historical behavior. When the sink runs a
/// transport::DemandSink (TCP mode), Wire hands the byte demands over and
/// the packet structure (segmentation, ACK clocking, retransmits) becomes
/// emergent; the returned TimePoints are then scripted-formula *estimates*
/// that keep the service models' transaction pacing unchanged.
class Wire {
 public:
  Wire(sim::Simulator& sim, TrafficSink& sink, core::HostId self)
      : sim_{&sim}, sink_{&sink}, mux_{sink.transport()}, self_{self} {}

  /// Sends `payload` bytes from self to the connection's peer, starting at
  /// `start` with `gap` between segments. Inbound delayed ACKs (one per two
  /// segments) are synthesized for peers outside the modelled rack when
  /// `ack_inbound` is true. Returns the time the last segment is sent.
  core::TimePoint send(const Connection& conn, core::DataSize payload, core::TimePoint start,
                       core::Duration gap = core::Duration::micros(2), bool ack_inbound = true);

  /// Synthesizes `payload` bytes arriving from the connection's peer
  /// starting at `start`; outbound delayed ACKs are sent in response when
  /// `ack_outbound` is true. Pass false for the request leg of a
  /// request-response exchange — the response piggybacks the ACK, as real
  /// TCP does (this is what keeps the paper's packet-size medians from
  /// drowning in pure ACKs).
  core::TimePoint receive(const Connection& conn, core::DataSize payload, core::TimePoint start,
                          core::Duration gap = core::Duration::micros(2),
                          bool ack_outbound = true);

  /// Emits an outbound three-way-handshake opening (SYN out, SYN-ACK in,
  /// ACK out) beginning at `start`; returns when the connection is usable.
  core::TimePoint open(const Connection& conn, core::TimePoint start,
                       core::Duration rtt = core::Duration::micros(60));

  /// Emits an inbound handshake (peer opens a connection to self).
  core::TimePoint open_inbound(const Connection& conn, core::TimePoint start,
                               core::Duration rtt = core::Duration::micros(60));

  /// Emits FIN/ACK teardown initiated by self at `start`.
  void close(const Connection& conn, core::TimePoint start,
             core::Duration rtt = core::Duration::micros(60));

 private:
  void emit_out(const core::FiveTuple& tuple, core::HostId peer, core::TimePoint at,
                std::int64_t payload, core::TcpFlags flags);
  void emit_in(const core::FiveTuple& tuple_from_peer, core::HostId peer, core::TimePoint at,
               std::int64_t payload, core::TcpFlags flags);

  sim::Simulator* sim_;
  TrafficSink* sink_;
  transport::DemandSink* mux_;  // null in scripted mode
  core::HostId self_;
};

}  // namespace fbdcsim::services
