// Cache-tier traffic models (Sections 3.2, 4.2, 5.2; Table 2 rows "Cache-f"
// and "Cache-l").
//
// Followers serve reads for the Web servers of their own cluster; because
// user requests are load-balanced over all Web servers and objects are
// small, follower traffic is uniform, stable, and cluster-dominated.
// Leaders keep the geographically-distributed cache coherent: their traffic
// reaches followers in other clusters, databases, and other datacenters
// (Table 3 Cache column: ~0.2% rack, 13% cluster, 41% DC, 46% inter-DC).
//
// Hot-object dynamics (§5.2): bursts of demand for single objects arrive as
// surge events; with mitigation enabled the surge is clipped after the
// cache instructs Web servers to cache the object and replicates sustained
// shards, keeping per-second rates within a factor of two of the median
// (Figure 8c). The ablation bench disables mitigation to show the
// instability that load management removes.
//
// Both models are transport-agnostic (see Wire): pooled follower/leader
// connections skip the handshake under RackSimConfig::transport = kTcp and
// are born established, matching the paper's long-lived cache sessions.
#pragma once

#include <memory>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/services/connections.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/peer_selection.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

class CacheFollowerModel : public TrafficModel {
 public:
  CacheFollowerModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                     core::RngStream rng);

  void start(sim::Simulator& sim, TrafficSink& sink) override;

  /// Number of hot-object surge events so far (observability for tests).
  [[nodiscard]] std::int64_t surges_started() const { return surges_started_; }
  [[nodiscard]] std::int64_t surges_mitigated() const { return surges_mitigated_; }

 private:
  void schedule_next_get();
  void serve_get(double rate_multiplier);
  void schedule_next_surge();
  void schedule_next_ephemeral();
  void schedule_next_misc();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;

  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal object_size_;

  /// Shard leaders this follower fills from and the handful of background
  /// service endpoints it logs to (fixed, like real shard maps).
  std::vector<core::HostId> leader_peers_;
  std::vector<core::HostId> misc_peers_;

  /// Per-second demand weights over the cluster's Web racks: user sessions
  /// and page mixes make each rack's request rate wobble around its mean
  /// (~±25%%), which is the residual per-rack variation of Figure 8c (the
  /// paper: the median flow shows a >20%% deviation in ~45%% of seconds,
  /// yet ~90%% of samples stay within 2x of the median).
  void refresh_rack_weights();
  [[nodiscard]] std::optional<core::HostId> pick_requester();
  std::vector<double> rack_weight_cdf_;
  std::vector<std::vector<core::HostId>> web_hosts_by_rack_;
  std::int64_t weight_epoch_{-1};

  sim::Simulator* sim_{nullptr};
  TrafficSink* sink_{nullptr};
  std::unique_ptr<Wire> wire_;

  /// Extra demand multiplier contributed by active surges.
  double surge_multiplier_{1.0};
  std::int64_t surges_started_{0};
  std::int64_t surges_mitigated_{0};
};

class CacheLeaderModel : public TrafficModel {
 public:
  CacheLeaderModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                   core::RngStream rng);

  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_coherency();
  void schedule_next_db_op();
  void schedule_next_fill();
  void schedule_next_ephemeral();
  void schedule_next_misc();

  /// Follower scope chosen per Table 3's Cache locality mix.
  [[nodiscard]] Scope follower_scope();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;

  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal coherency_size_;
  core::LogNormal object_size_;

  /// Fixed shard databases and background endpoints.
  std::vector<core::HostId> db_peers_;
  std::vector<core::HostId> mf_peers_;
  std::vector<core::HostId> misc_peers_;

  sim::Simulator* sim_{nullptr};
  TrafficSink* sink_{nullptr};
  std::unique_ptr<Wire> wire_;
};

}  // namespace fbdcsim::services
