// Hadoop traffic model (Sections 4.2, 5.1, 6; Table 2 row "Hadoop").
//
// The node alternates between quiet computation and network-busy shuffle /
// HDFS-output phases. During busy phases it launches bulk transfers whose
// destinations are rack-local with probability ~0.76 (map-input locality
// and first-replica placement) and otherwise spread over a fixed partner
// set covering ~1.5% of the cluster's hosts across most racks (the
// Kandula-style pattern the paper confirms for Hadoop). Transfers ride
// ephemeral connections, making flows short and packets bimodal (MTU data
// plus ACKs, Figure 12); 99.8% of bytes stay within the Hadoop service.
//
// The model is transport-agnostic (see Wire): under RackSimConfig::
// transport = kTcp the bulk transfers are MSS-segmented and ACK-clocked by
// the flow-level TCP engine, so the Figure 12 bimodality is emergent.
#pragma once

#include <memory>
#include <vector>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/services/connections.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/peer_selection.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

class HadoopModel : public TrafficModel {
 public:
  HadoopModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
              core::RngStream rng);

  void start(sim::Simulator& sim, TrafficSink& sink) override;

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::span<const core::HostId> partners() const { return partners_; }

 private:
  void enter_quiet();
  void enter_busy();
  void schedule_next_transfer();
  void launch_transfer(bool inbound);
  void start_shuffle_streams(std::uint64_t epoch);
  void schedule_stream_chunk(std::uint64_t epoch, Connection conn, bool inbound,
                             core::TimePoint at);
  void schedule_next_control();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;

  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal transfer_size_;

  sim::Simulator* sim_{nullptr};
  TrafficSink* sink_{nullptr};
  std::unique_ptr<Wire> wire_;

  bool busy_{false};
  std::uint64_t phase_epoch_{0};  // invalidates stale phase-scoped events
  std::vector<core::HostId> partners_;       // cluster-spread partner set
  std::vector<core::HostId> rack_partners_;  // rack-local peers
};

}  // namespace fbdcsim::services
