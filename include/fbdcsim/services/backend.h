// Backend service models: Multifeed, SLB, Database, and miscellaneous
// Service hosts. These roles complete the request pipeline of Figure 2 and
// the cluster mix of Table 3; they are simpler than the Web/cache/Hadoop
// models but fully functional, so any rack in the fleet can be monitored.
// All of them emit through Wire, so they run unchanged on either transport
// backend (scripted packets or the flow-level TCP engine, DESIGN.md §10).
#pragma once

#include <memory>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/services/connections.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/peer_selection.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

/// Multifeed / ads aggregation backends: answer Web-tier RPCs with ranked
/// feed fragments; receive invalidations from cache leaders.
class MultifeedModel : public TrafficModel {
 public:
  MultifeedModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                 core::RngStream rng);
  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_request();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;
  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal response_size_;
  sim::Simulator* sim_{nullptr};
  std::unique_ptr<Wire> wire_;
};

/// Layer-4 software load balancers: user requests in from the edge, pages
/// out to users; request forwarding to Web servers spread across the
/// cluster (the load-balancing mechanism itself).
class SlbModel : public TrafficModel {
 public:
  SlbModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
           core::RngStream rng);
  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_request();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;
  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal page_size_;
  sim::Simulator* sim_{nullptr};
  std::unique_ptr<Wire> wire_;
};

/// MySQL database servers: serve cache-leader queries and replicate to
/// sibling databases within the cluster, across the datacenter, and across
/// sites in roughly even proportion (Table 3 DB row).
class DatabaseModel : public TrafficModel {
 public:
  DatabaseModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                core::RngStream rng);
  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_query();
  void schedule_next_replication();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;
  PeerSelector peers_;
  ConnectionTable conns_;
  core::LogNormal response_size_;
  std::vector<core::HostId> replica_peers_;
  sim::Simulator* sim_{nullptr};
  std::unique_ptr<Wire> wire_;
};

/// Miscellaneous supporting services: log sinks, config distribution,
/// monitoring. Mostly passive receivers with light background chatter.
class ServiceHostModel : public TrafficModel {
 public:
  ServiceHostModel(const topology::Fleet& fleet, core::HostId self, const ServiceMix& mix,
                   core::RngStream rng);
  void start(sim::Simulator& sim, TrafficSink& sink) override;

 private:
  void schedule_next_message();

  const topology::Fleet* fleet_;
  core::HostId self_;
  const ServiceMix* mix_;
  core::RngStream rng_;
  PeerSelector peers_;
  ConnectionTable conns_;
  sim::Simulator* sim_{nullptr};
  std::unique_ptr<Wire> wire_;
};

/// Constructs the model matching a host's role.
[[nodiscard]] std::unique_ptr<TrafficModel> make_model(const topology::Fleet& fleet,
                                                       core::HostId host,
                                                       const ServiceMix& mix,
                                                       core::RngStream rng);

}  // namespace fbdcsim::services
