// Peer selection with explicit locality scopes.
//
// The paper attributes its headline results to *where* services find their
// peers: Web servers and cache followers spread load uniformly across the
// whole cluster (load balancing, §5.2), cache leaders reach across clusters
// and datacenters (the cache is "a single geographically distributed
// instance"), and Hadoop prefers its own rack. PeerSelector encodes those
// policies; the LB-off ablation swaps uniform choice for a Zipf-skewed one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::services {

/// Where a peer may be, relative to the selecting host.
enum class Scope : std::uint8_t {
  kSameRack,                 // own rack, excluding self
  kSameCluster,              // own cluster (any rack), excluding self
  kSameClusterOtherRack,     // own cluster, different rack
  kSameDatacenterOtherCluster,
  kSameDatacenter,           // own DC, any cluster, excluding self
  kOtherDatacentersSameSite,
  kOtherSites,
  kOtherDatacenters,         // anywhere outside own DC
  kAnywhere,                 // whole fleet, excluding self
};

[[nodiscard]] const char* to_string(Scope scope);

/// Selects peers of a given role within a scope, uniformly (load-balanced)
/// or Zipf-skewed (for the load-balancing-off ablation). Candidate lists
/// are resolved once per (role, scope) and cached.
class PeerSelector {
 public:
  PeerSelector(const topology::Fleet& fleet, core::HostId self)
      : fleet_{&fleet}, self_{self} {}

  /// All candidates of `role` within `scope` (stable order, self excluded).
  [[nodiscard]] std::span<const core::HostId> candidates(core::HostRole role, Scope scope);

  /// Uniform choice; nullopt if no candidate exists.
  [[nodiscard]] std::optional<core::HostId> pick(core::HostRole role, Scope scope,
                                                 core::RngStream& rng);

  /// Zipf-skewed choice over the candidate list; models concentrated
  /// demand (no load balancing, or hot shards). `rotation` shifts which
  /// candidates are hot — advancing it over time makes the hot set churn,
  /// which is how rapidly-changing heavy hitters (§5.3) arise.
  [[nodiscard]] std::optional<core::HostId> pick_skewed(core::HostRole role, Scope scope,
                                                        core::RngStream& rng,
                                                        double zipf_exponent = 1.2,
                                                        std::uint64_t rotation = 0);

  /// A fixed set of up to `count` distinct peers of `role` within `scope`.
  /// Services do not scatter their background/shard traffic over the whole
  /// fleet: log sinks, shard leaders, and replica sets are small, stable
  /// peer groups. Models draw such groups once at construction.
  [[nodiscard]] std::vector<core::HostId> pick_set(core::HostRole role, Scope scope,
                                                   std::size_t count, core::RngStream& rng);

  [[nodiscard]] core::HostId self() const { return self_; }
  [[nodiscard]] const topology::Fleet& fleet() const { return *fleet_; }

 private:
  [[nodiscard]] bool in_scope(const topology::Host& candidate, Scope scope) const;

  const topology::Fleet* fleet_;
  core::HostId self_;
  std::map<std::pair<core::HostRole, Scope>, std::vector<core::HostId>> cache_;
  std::map<std::pair<core::HostRole, Scope>, core::Zipf> zipf_cache_;
};

}  // namespace fbdcsim::services
