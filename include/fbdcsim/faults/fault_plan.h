// Deterministic fault injection: a seeded, schedule-driven fault layer.
//
// The paper's measurement apparatus is explicitly lossy — Fbflow samples
// 1:30,000 and loses records in the agent -> Scribe -> tagger -> Scuba
// pipeline (§3.3.1), and port-mirroring capture competes with live traffic
// (§3.3.2). FaultPlan reproduces those failure modes, plus fabric faults
// (link degradation/failure, switch buffer shrinkage) and host
// crash/restart epochs, so experiments can quantify how robust each
// reproduced finding is to realistic collection and fabric failures.
//
// Determinism contract: every decision is a pure function of
// (plan seed, fault kind, entity identity, time bucket) — no mutable RNG
// state anywhere. Two consequences:
//
//   - re-running any experiment with the same seed reproduces the exact
//     fault schedule, bit for bit;
//   - a decision never depends on how work was sharded or interleaved, so
//     faulted runs stay bit-identical across FBDCSIM_THREADS=1/2/8, the
//     same contract the runtime/ subsystem guarantees for fault-free runs.
//
// A null FaultPlan pointer (or Profile::kOff) is the zero-cost opt-out:
// every consumer guards with `plan == nullptr || !plan->enabled()` and then
// executes the exact pre-fault code path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/core/time.h"

namespace fbdcsim::faults {

/// Built-in fault intensity tiers. kCustom marks a config loaded from a
/// profile file (FBDCSIM_FAULTS=<path>).
enum class Profile : std::uint8_t { kOff, kLight, kHeavy, kCustom };

[[nodiscard]] const char* to_string(Profile profile);

/// Every rate is a per-decision probability; every decision's granularity
/// (per link-minute, per host-epoch, per sample-attempt, ...) is documented
/// on the corresponding FaultPlan query.
struct FaultConfig {
  Profile profile = Profile::kOff;

  /// Mixed into every decision hash. Experiments that want a different
  /// fault schedule over the same workload change only this.
  std::uint64_t seed = 0xFA017ULL;

  // ---- (a) fabric: links and switch buffers ----
  /// P(hard failure) per (link, minute): capacity 0 for that minute.
  double link_fail_prob = 0.0;
  /// P(degradation) per (link, minute): capacity multiplied by
  /// link_degrade_factor for that minute. Failure wins over degradation.
  double link_degrade_prob = 0.0;
  double link_degrade_factor = 1.0;
  /// P(a rack-sim run starts with a shrunken shared buffer) — models a chip
  /// with part of its buffer carved off for mirroring/other features.
  double buffer_shrink_prob = 0.0;
  double buffer_shrink_factor = 1.0;

  // ---- (b) hosts: crash/restart epochs ----
  /// P(a host is down) per (host, epoch); a down host emits no flows and
  /// receives none for the epoch, then restarts.
  double host_crash_prob = 0.0;
  core::Duration host_epoch = core::Duration::minutes(10);

  // ---- (c) collection pipeline: Scribe, taggers, capture ----
  /// P(one Scribe publish attempt fails) per (sample, attempt). Failed
  /// attempts retry with exponential backoff up to scribe_max_retries; a
  /// sample whose every attempt fails is lost (scribe_dropped).
  double scribe_drop_prob = 0.0;
  int scribe_max_retries = 3;
  core::Duration scribe_backoff_base = core::Duration::millis(50);
  /// P(a delivered sample is delayed in Scribe) per sample; the delay is a
  /// deterministic fraction of scribe_max_delay and shifts which minute the
  /// record lands in (the paper's mis-tagged-minute effect).
  double scribe_delay_prob = 0.0;
  core::Duration scribe_max_delay = core::Duration::seconds(30);
  /// P(the tagger's topology lookup fails) per sample. The pipeline
  /// degrades gracefully: the row lands partial (untagged) and is excluded
  /// from topology-keyed aggregates but still counted.
  double tag_failure_prob = 0.0;
  /// Base P(the mirror drops a frame) per mirrored packet, scaled up by
  /// switch-buffer occupancy (capture competes with live traffic under
  /// load): p = capture_drop_prob * (0.1 + 0.9 * occupancy_fraction).
  double capture_drop_prob = 0.0;

  // ---- (d) fabric beyond the RSW: transport-visible path loss ----
  /// P(the network beyond the monitored RSW loses one transport
  /// transmission) per attempt — congestion or corruption somewhere on the
  /// CSW/FC path that the rack simulation does not model hop-by-hop. Only
  /// the flow-level TCP model (transport/) consults this; scripted traffic
  /// and every pre-transport decision are unaffected by the field.
  double path_loss_prob = 0.0;
};

/// The built-in tiers. Light approximates a healthy production fleet's
/// background failure rates; heavy is a stress tier for robustness studies.
[[nodiscard]] FaultConfig light_profile();
[[nodiscard]] FaultConfig heavy_profile();

/// Parses a FBDCSIM_FAULTS spec: "off" | "light" | "heavy" | <profile
/// file>. A profile file holds `key = value` lines ('#' comments; keys are
/// the FaultConfig field names). Returns std::nullopt and fills *error on
/// malformed specs — callers treat that as "off" after diagnosing.
[[nodiscard]] std::optional<FaultConfig> parse_fault_spec(std::string_view spec,
                                                          std::string* error);

/// FBDCSIM_FAULTS from the environment. Unset, "off", and malformed values
/// (diagnosed on stderr) all yield a disabled config — never a crash.
[[nodiscard]] FaultConfig fault_config_from_env();

/// The schedule. Queries are const, thread-safe, and allocation-free.
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config) : config_{config} {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.profile != Profile::kOff; }

  // ---- (a) fabric ----
  /// Hard failure of `link` during the minute containing `at`.
  [[nodiscard]] bool link_failed(core::LinkId link, core::TimePoint at) const;
  /// Capacity multiplier for `link` in the minute containing `at`:
  /// 0 when failed, link_degrade_factor when degraded, otherwise 1.
  [[nodiscard]] double link_capacity_factor(core::LinkId link, core::TimePoint at) const;
  /// Shared-buffer multiplier for a run identified by `run_salt` (the rack
  /// sim's seed): buffer_shrink_factor or 1.
  [[nodiscard]] double buffer_shrink_factor(std::uint64_t run_salt) const;

  // ---- (b) hosts ----
  /// True when `host` is crashed for the host_epoch containing `at`.
  [[nodiscard]] bool host_down(core::HostId host, core::TimePoint at) const;

  // ---- (c) collection pipeline ----
  /// Stable identity of one sampled header, for per-sample decisions. Any
  /// consumer observing the same sample computes the same key regardless of
  /// sharding, so pipeline faults are merge-order independent.
  [[nodiscard]] static std::uint64_t sample_key(std::uint64_t reporter,
                                               std::int64_t captured_at_nanos,
                                               std::uint64_t tuple_hash) {
    return core::splitmix64(core::splitmix64(reporter) ^
                            core::splitmix64(static_cast<std::uint64_t>(captured_at_nanos)) ^
                            tuple_hash);
  }

  /// One Scribe publish attempt (0 = first try) for the sample fails.
  [[nodiscard]] bool scribe_attempt_fails(std::uint64_t sample_key, int attempt) const;
  /// Total backoff accumulated after `attempts_failed` failed attempts:
  /// base * (2^attempts_failed - 1) — the standard exponential schedule.
  [[nodiscard]] core::Duration scribe_backoff(int attempts_failed) const;
  /// The sample is delayed in Scribe (independent of drop/retry).
  [[nodiscard]] bool scribe_delayed(std::uint64_t sample_key) const;
  /// Delay length for a delayed sample: a deterministic per-sample fraction
  /// of scribe_max_delay, never zero.
  [[nodiscard]] core::Duration scribe_delay(std::uint64_t sample_key) const;
  /// The tagger's topology lookup fails for this sample.
  [[nodiscard]] bool tagger_lookup_fails(std::uint64_t sample_key) const;
  /// The mirror drops this frame given current buffer occupancy in [0, 1].
  [[nodiscard]] bool capture_drop(std::uint64_t sample_key, double occupancy_fraction) const;

  // ---- (d) transport path loss ----
  /// The fabric beyond the RSW loses the transport transmission identified
  /// by `transmission_key` (a per-attempt key: connection tuple hash mixed
  /// with a per-connection attempt serial, so retransmissions of the same
  /// bytes draw independently).
  [[nodiscard]] bool path_loss(std::uint64_t transmission_key) const;

 private:
  /// Fault kinds, hashed into decisions so distinct kinds never correlate.
  enum class Decision : std::uint64_t {
    kLinkFail = 1,
    kLinkDegrade,
    kBufferShrink,
    kHostCrash,
    kScribeDrop,
    kScribeDelayFlag,
    kScribeDelayLen,
    kTagFailure,
    kCaptureDrop,
    kPathLoss,  // appended: earlier kinds keep their hash inputs
  };

  /// Uniform value in [0, 1) from (seed, decision, entity, bucket).
  [[nodiscard]] double unit(Decision d, std::uint64_t entity, std::uint64_t bucket) const;

  FaultConfig config_;
};

}  // namespace fbdcsim::faults
