// Per-packet and arrival-process analyses (Section 6; Figures 12-14) and
// the rate-stability analyses of Section 5.2 (Figure 8).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::analysis {

/// Packet-size samples (on-wire frame bytes, both directions) — Figure 12.
[[nodiscard]] core::Cdf packet_size_cdf(std::span<const core::PacketHeader> trace);

/// Figure 12's bimodality, summarized: the fraction of frames at the two
/// TCP modes — "small" (no payload: pure ACKs, handshake and control
/// frames, at most 1.5x the padded ACK frame) and "full" (frames carrying
/// at least 90% of an MSS). Mid-sized frames belong to neither mode.
/// Scripted and flow-level transports should both be strongly bimodal;
/// the ablation bench compares their splits.
struct PacketSizeModes {
  double small_fraction{0.0};
  double full_fraction{0.0};
  std::int64_t samples{0};
};
[[nodiscard]] PacketSizeModes packet_size_mode_split(
    std::span<const core::PacketHeader> trace);

/// Inter-arrival times (microseconds) of outbound SYN packets (initial
/// SYNs, not SYN-ACKs) — Figure 14.
[[nodiscard]] core::Cdf syn_interarrival_cdf(std::span<const core::PacketHeader> trace,
                                             core::Ipv4Addr outbound_from);

/// Packets per fixed-width bin over the trace — Figure 13's time series
/// (the paper shows 15-ms and 100-ms binnings to demonstrate the absence
/// of ON/OFF behaviour).
[[nodiscard]] std::vector<std::int64_t> arrival_counts(
    std::span<const core::PacketHeader> trace, core::Duration bin);

/// A simple ON/OFF-ness score: the fraction of bins with zero packets.
/// ON/OFF traffic at the binning timescale shows a large idle fraction;
/// Facebook-style continuous arrivals show ~0 (§6.2).
[[nodiscard]] double idle_bin_fraction(std::span<const core::PacketHeader> trace,
                                       core::Duration bin);

/// §6.2's second observation: aggregate arrivals are continuous, but "if
/// one considers traffic on a per-destination host basis, on/off behavior
/// remerges". Computes the idle-bin fraction separately for each
/// destination host of `outbound_from` (over [first, last] packet of that
/// destination) and returns the distribution. High per-destination idle
/// fractions alongside a ~0 aggregate fraction reproduce the claim.
[[nodiscard]] core::Cdf per_destination_idle_fractions(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    core::Duration bin, std::int64_t min_packets = 10);

/// Figure 8 family: per-destination-rack outbound rates per second.
/// rates[rack_position][second] in bytes/sec; racks with no traffic are
/// omitted. The rack key is the topology RackId value.
struct PerRackRates {
  std::vector<std::uint64_t> rack_keys;
  std::vector<std::vector<double>> bytes_per_sec;  // [rack][second]
  std::size_t seconds{0};
};
[[nodiscard]] PerRackRates per_rack_second_rates(std::span<const core::PacketHeader> trace,
                                                 core::Ipv4Addr outbound_from,
                                                 const AddrResolver& resolver,
                                                 core::TimePoint origin, core::Duration span);

/// Stability metrics over PerRackRates (Figure 8c and §5.2's "significant
/// change" test).
struct RateStability {
  /// Fraction of (rack, second) samples within a factor of two of that
  /// rack's median rate (paper: ~90% for cache).
  double within_2x_of_median{0.0};
  /// Fraction of samples deviating more than 20% from the rack median
  /// (Benson et al.'s significant-change criterion; paper: ~45%).
  double significant_change{0.0};
  /// Per-rack normalized (rate / median) samples for CDF plotting.
  std::vector<std::vector<double>> normalized;
};
[[nodiscard]] RateStability rate_stability(const PerRackRates& rates);

}  // namespace fbdcsim::analysis
