// Heavy-hitter extraction and stability (Section 5.3; Table 4, Figures 10
// and 11).
//
// A heavy-hitter set is the *minimum* set of flows (or destination hosts /
// racks) responsible for at least half the bytes in a time interval.
// Persistence compares consecutive intervals; the enclosing-second
// intersection asks how much of a second's heavy hitters are instantaneous
// heavy hitters inside its subintervals — the paper's upper bound on
// traffic-engineering usefulness.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::analysis {

/// Bytes per aggregation key per fixed-width time bin.
class BinnedTraffic {
 public:
  BinnedTraffic(core::Duration bin_width, std::size_t num_bins)
      : bin_width_{bin_width}, bins_(num_bins) {}

  void add(std::int64_t bin, std::uint64_t key, double bytes) {
    if (bin < 0 || static_cast<std::size_t>(bin) >= bins_.size()) return;
    bins_[static_cast<std::size_t>(bin)][key] += bytes;
  }

  [[nodiscard]] core::Duration bin_width() const { return bin_width_; }
  [[nodiscard]] std::size_t num_bins() const { return bins_.size(); }
  [[nodiscard]] const std::unordered_map<std::uint64_t, double>& bin(std::size_t i) const {
    return bins_.at(i);
  }

 private:
  core::Duration bin_width_;
  std::vector<std::unordered_map<std::uint64_t, double>> bins_;
};

/// Bins the outbound traffic of `from` at the given aggregation level.
/// Bin 0 starts at `origin` (pass the capture start).
[[nodiscard]] BinnedTraffic bin_outbound(std::span<const core::PacketHeader> trace,
                                         core::Ipv4Addr from, const AddrResolver& resolver,
                                         AggLevel level, core::Duration bin_width,
                                         core::TimePoint origin, core::Duration span);

/// The minimal set of keys covering at least `coverage` of the bin's bytes
/// (keys sorted by descending contribution; ties broken by key).
[[nodiscard]] std::vector<std::uint64_t> heavy_hitters_of(
    const std::unordered_map<std::uint64_t, double>& bin, double coverage = 0.5);

/// For each consecutive bin pair with non-empty heavy-hitter sets, the
/// percentage of the first bin's heavy hitters still heavy in the next
/// (Figure 10's x-axis samples).
[[nodiscard]] std::vector<double> hh_persistence(const BinnedTraffic& binned,
                                                 double coverage = 0.5);

/// For each subinterval, the percentage of its heavy hitters that are also
/// heavy hitters of the enclosing second (Figure 11). `per_second` must be
/// the same traffic binned at one second with the same origin.
[[nodiscard]] std::vector<double> hh_second_intersection(const BinnedTraffic& sub,
                                                         const BinnedTraffic& per_second,
                                                         double coverage = 0.5);

/// Table 4: number of heavy hitters per bin and their rates.
struct HeavyHitterStats {
  core::Cdf count_per_bin;  // set size per non-empty bin
  core::Cdf size_mbps;      // each heavy hitter's rate within its bin
};
[[nodiscard]] HeavyHitterStats hh_stats(const BinnedTraffic& binned, double coverage = 0.5);

}  // namespace fbdcsim::analysis
