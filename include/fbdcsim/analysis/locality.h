// Locality analyses (Section 4.2, Figure 4; Table 2's service breakdown).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/packet.h"

namespace fbdcsim::analysis {

/// Outbound bytes per time bin split by destination locality — the data of
/// Figure 4's stacked per-second charts.
struct LocalityBin {
  std::int64_t bin{0};
  std::array<double, core::kNumLocalities> bytes{};

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const double b : bytes) t += b;
    return t;
  }
};

[[nodiscard]] std::vector<LocalityBin> locality_timeseries(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    const AddrResolver& resolver, core::Duration bin = core::Duration::seconds(1));

/// Overall outbound byte share by destination locality.
[[nodiscard]] std::array<double, core::kNumLocalities> locality_shares(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    const AddrResolver& resolver);

/// Outbound byte share by destination role (Table 2). Shares are
/// percentages of the host's total outbound payload bytes.
struct RoleShare {
  core::HostRole role;
  double percent{0.0};
};
[[nodiscard]] std::vector<RoleShare> outbound_role_shares(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    const AddrResolver& resolver);

/// Per-locality flow size and duration samples (Figures 6 and 7): for each
/// outbound flow, its destination locality, total payload bytes, and
/// duration.
struct FlowsByLocality {
  std::array<std::vector<double>, core::kNumLocalities> size_bytes;
  std::array<std::vector<double>, core::kNumLocalities> duration_ms;
  std::vector<double> all_size_bytes;
  std::vector<double> all_duration_ms;
};
[[nodiscard]] FlowsByLocality flows_by_locality(std::span<const Flow> flows,
                                                const AddrResolver& resolver);

}  // namespace fbdcsim::analysis
