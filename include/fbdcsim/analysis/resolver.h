// Address -> topology resolution with caching, shared by all analyses.
//
// Port-mirror traces contain only packet headers; every analysis that needs
// locality, roles, or rack identities resolves addresses against the fleet
// exactly as the paper's offline analyses join traces with metadata.
#pragma once

#include <optional>
#include <unordered_map>

#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::analysis {

class AddrResolver {
 public:
  explicit AddrResolver(const topology::Fleet& fleet) : fleet_{&fleet} {}

  [[nodiscard]] core::HostId host_of(core::Ipv4Addr addr) const;
  [[nodiscard]] std::optional<core::RackId> rack_of(core::Ipv4Addr addr) const;
  [[nodiscard]] std::optional<core::HostRole> role_of(core::Ipv4Addr addr) const;

  /// Locality of dst relative to src; nullopt if either is unknown.
  [[nodiscard]] std::optional<core::Locality> locality(core::Ipv4Addr src,
                                                       core::Ipv4Addr dst) const;

  [[nodiscard]] const topology::Fleet& fleet() const { return *fleet_; }

 private:
  const topology::Fleet* fleet_;
  mutable std::unordered_map<core::Ipv4Addr, core::HostId> cache_;
};

}  // namespace fbdcsim::analysis
