// Concurrency analyses (Section 6.4; Figures 16 and 17).
//
// "Concurrent" means existing within the same 5-ms window. Figure 16
// counts, per window, the distinct destination racks an individual host
// sends to, split by destination locality; Figure 17 restricts the count
// to the window's heavy-hitter racks. The same machinery also reports
// concurrent 5-tuple and per-host counts (the §6.4 text numbers).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::analysis {

/// Locality classes reported in Figures 16/17, plus the "All" aggregate.
/// (Intra-rack destinations do not traverse uplinks; the figures report
/// cluster/DC/inter-DC only, and "All" includes everything.)
struct ConcurrencyCdfs {
  core::Cdf intra_cluster;
  core::Cdf intra_datacenter;  // same DC, different cluster
  core::Cdf inter_datacenter;
  core::Cdf all;
};

/// Distinct destination racks per window (Figure 16).
[[nodiscard]] ConcurrencyCdfs concurrent_racks(std::span<const core::PacketHeader> trace,
                                               core::Ipv4Addr outbound_from,
                                               const AddrResolver& resolver,
                                               core::Duration window = core::Duration::millis(5));

/// Distinct heavy-hitter destination racks per window (Figure 17): racks
/// that belong to the window's minimal 50%-byte cover.
[[nodiscard]] ConcurrencyCdfs concurrent_heavy_hitter_racks(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    const AddrResolver& resolver, core::Duration window = core::Duration::millis(5));

/// Distinct concurrent 5-tuples and destination hosts per window — the
/// §6.4 text numbers (100s-1000s for Web/cache, ~25 for Hadoop; host-level
/// grouping reduces by at most 2x).
struct ConnectionConcurrency {
  core::Cdf tuples;
  core::Cdf hosts;
};
[[nodiscard]] ConnectionConcurrency concurrent_connections(
    std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from,
    core::Duration window = core::Duration::millis(5));

}  // namespace fbdcsim::analysis
