// Intra-flow burstiness analysis (Section 5.1).
//
// "Regardless of flow size or length, flows tend to be internally bursty:
// most flows are active only during distinct millisecond-scale intervals
// with large intervening gaps." These analyses quantify that claim from a
// trace: per-flow duty cycles (fraction of a flow's lifetime bins with any
// packet), and trains of back-to-back packets (Kapoor et al.'s packet
// trains, which the paper cites as related work).
#pragma once

#include <span>

#include "fbdcsim/analysis/flow_table.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::analysis {

/// Per-flow duty cycle: for each outbound flow with at least `min_packets`
/// packets and a lifetime of at least two bins, the fraction of its
/// lifetime bins (default 1 ms) containing at least one packet. Internally
/// bursty flows have small duty cycles.
[[nodiscard]] core::Cdf flow_duty_cycles(std::span<const core::PacketHeader> trace,
                                         core::Ipv4Addr outbound_from,
                                         core::Duration bin = core::Duration::millis(1),
                                         std::int64_t min_packets = 5);

/// Statistics over packet trains: maximal runs of a host's outbound packets
/// whose inter-arrival gaps stay below `max_gap`.
struct TrainStats {
  core::Cdf packets_per_train;
  core::Cdf bytes_per_train;
  core::Cdf train_duration_us;
  core::Cdf gap_between_trains_us;
};
[[nodiscard]] TrainStats packet_trains(std::span<const core::PacketHeader> trace,
                                       core::Ipv4Addr outbound_from,
                                       core::Duration max_gap = core::Duration::micros(20));

}  // namespace fbdcsim::analysis
