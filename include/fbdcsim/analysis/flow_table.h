// Flow assembly from packet-header traces (Sections 5.1, 6.2).
//
// Reconstructs 5-tuple flows from a mirrored trace, then aggregates them to
// destination-host and destination-rack granularity — the three aggregation
// levels of Figures 6-11. Flow boundaries follow the paper's definition: a
// flow is a 5-tuple's packets within the capture; SYN/FIN presence is
// recorded so analyses can distinguish ephemeral from pooled connections.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "fbdcsim/analysis/resolver.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/stats.h"

namespace fbdcsim::analysis {

struct Flow {
  core::FiveTuple tuple;
  core::TimePoint first_packet;
  core::TimePoint last_packet;
  std::int64_t payload_bytes{0};
  std::int64_t frame_bytes{0};
  std::int64_t packets{0};
  bool saw_syn{false};
  bool saw_fin{false};

  [[nodiscard]] core::Duration duration() const { return last_packet - first_packet; }
};

/// How flows are keyed when aggregating (Figures 6-11 all report results at
/// these three levels).
enum class AggLevel { kFlow, kHost, kRack };

[[nodiscard]] const char* to_string(AggLevel level);

class FlowTable {
 public:
  /// Assembles flows from `trace`, keeping only packets whose source
  /// matches `outbound_from` (pass the monitored host's address to study
  /// its outbound traffic, as most of §5 does).
  [[nodiscard]] static std::vector<Flow> outbound_flows(
      std::span<const core::PacketHeader> trace, core::Ipv4Addr outbound_from);

  /// Assembles flows from every packet in the trace (both directions),
  /// keyed by the canonical (smaller-endpoint-first) tuple orientation.
  [[nodiscard]] static std::vector<Flow> all_flows(std::span<const core::PacketHeader> trace);
};

/// Sums of flow-level quantities after aggregation to host or rack level.
struct AggregatedFlow {
  std::uint64_t key;  // dst host address, or dst rack id
  core::TimePoint first_packet;
  core::TimePoint last_packet;
  std::int64_t payload_bytes{0};
  std::int64_t packets{0};
};

/// Aggregates outbound flows by destination host or rack.
[[nodiscard]] std::vector<AggregatedFlow> aggregate(std::span<const Flow> flows,
                                                    AggLevel level,
                                                    const AddrResolver& resolver);

}  // namespace fbdcsim::analysis
