// Traffic-engineering effectiveness evaluation (Section 5.4).
//
// The paper argues that heavy-hitter-driven TE schemes (circuit
// provisioning, flow re-routing, hybrid fabrics) need (a) heavy hitters
// that can be identified by observation, and (b) enough of the next
// interval's bytes carried by them for the special treatment to matter.
// This module operationalizes that argument: a predict-then-measure loop
// over a trace. In each interval the scheme "treats" the previous
// interval's heavy hitters; the score is the fraction of bytes that
// actually ride treated keys. An oracle bound (treat this interval's own
// heavy hitters, i.e. perfect prediction) separates prediction failure from
// concentration failure.
#pragma once

#include <span>
#include <vector>

#include "fbdcsim/analysis/heavy_hitters.h"

namespace fbdcsim::analysis {

struct TeEvaluation {
  /// Mean fraction of bytes carried by keys predicted from the previous
  /// interval (what a reactive TE scheme would capture).
  double predicted_byte_coverage{0.0};
  /// Mean fraction of bytes carried by the interval's own heavy hitters
  /// (what a clairvoyant scheme would capture — by construction >= 50%).
  double oracle_byte_coverage{0.0};
  /// Mean number of keys treated per interval.
  double mean_treated_keys{0.0};
  /// Number of intervals evaluated.
  std::int64_t intervals{0};

  /// Benson et al.'s threshold: TE is considered workable when >= 35% of
  /// bytes are predictable.
  [[nodiscard]] bool meets_benson_threshold() const {
    return predicted_byte_coverage >= 0.35;
  }
};

/// Evaluates reactive heavy-hitter TE over pre-binned traffic.
[[nodiscard]] TeEvaluation evaluate_reactive_te(const BinnedTraffic& binned,
                                                double coverage = 0.5);

/// Convenience: bins a trace at the given aggregation/interval and runs the
/// evaluation (origin = first packet's interval).
[[nodiscard]] TeEvaluation evaluate_reactive_te(std::span<const core::PacketHeader> trace,
                                                core::Ipv4Addr outbound_from,
                                                const AddrResolver& resolver, AggLevel level,
                                                core::Duration interval,
                                                core::TimePoint origin, core::Duration span,
                                                double coverage = 0.5);

}  // namespace fbdcsim::analysis
