// Flow-completion-time tail analytics over FlowLedger records.
//
// The ledger (telemetry/flow_ledger.h) records one entry per directed
// transfer; this module aggregates completed transfers into per-
// role x locality x size-bucket FCT and slowdown CDFs — the view the
// paper's tail-latency arguments (and the bench_fct_tails comparison of
// transport variants) are built on. Slowdown = FCT / ideal FCT, where the
// ideal is the record's topology-derived base RTT plus its bytes at the
// bottleneck rate; 1.0 is a transfer that saw an idle network.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/stats.h"
#include "fbdcsim/telemetry/flow_ledger.h"

namespace fbdcsim::analysis {

inline constexpr int kNumFctRoles = 8;  // one per core::HostRole
inline constexpr int kNumFctSizeBuckets = 4;

/// Transfer size class: 0 = <=4 KB (RPC-scale), 1 = <=64 KB, 2 = <=1 MB,
/// 3 = larger (Hadoop-scale bulk).
[[nodiscard]] int fct_size_bucket(std::int64_t bytes);
/// Stable short name per bucket: "le4k", "le64k", "le1m", "gt1m".
[[nodiscard]] const char* fct_size_bucket_name(int bucket);

/// One aggregation cell: completed-transfer FCTs (microseconds) and
/// slowdowns.
struct FctCell {
  core::Cdf fct_us;
  core::Cdf slowdown;
  std::int64_t count{0};
  std::int64_t bytes{0};

  void merge(const FctCell& other) {
    fct_us.merge(other.fct_us);
    slowdown.merge(other.slowdown);
    count += other.count;
    bytes += other.bytes;
  }
};

/// role x locality x size-bucket FCT table. Incomplete records (the run
/// ended or the connection was torn down mid-transfer) are counted but
/// contribute no samples — a tail analysis over truncated FCTs would be
/// survivorship-biased the other way.
class FctTable {
 public:
  void add(const telemetry::FlowLedgerRecord& record);
  void add_all(std::span<const telemetry::FlowLedgerRecord> records);

  [[nodiscard]] const FctCell& cell(core::HostRole role, core::Locality locality,
                                    int size_bucket) const;
  /// All cells of one role merged (the bench headline granularity).
  [[nodiscard]] FctCell role_cell(core::HostRole role) const;
  /// Every completed transfer in one CDF pair.
  [[nodiscard]] FctCell overall() const;

  [[nodiscard]] std::int64_t completed() const { return completed_; }
  [[nodiscard]] std::int64_t incomplete() const { return incomplete_; }

  /// Deterministic JSON object for the BenchReport "fct" section: counts
  /// plus one entry per non-empty cell, in (role, locality, bucket) index
  /// order, each with count/bytes and p50/p90/p99/p999 of both CDFs.
  [[nodiscard]] std::string to_json() const;

 private:
  [[nodiscard]] static std::size_t index(int role, int locality, int bucket) {
    return (static_cast<std::size_t>(role) * core::kNumLocalities +
            static_cast<std::size_t>(locality)) *
               kNumFctSizeBuckets +
           static_cast<std::size_t>(bucket);
  }

  std::array<FctCell, kNumFctRoles * core::kNumLocalities * kNumFctSizeBuckets> cells_{};
  std::int64_t completed_{0};
  std::int64_t incomplete_{0};
};

}  // namespace fbdcsim::analysis
