// Fleet-level flow generation (the Fbflow-scale view).
//
// For each host, per epoch, emits FlowRecords for every traffic component
// of its role — the same causal structure as the packet-level models
// (destination service mix from Table 2, destination scopes from the
// placement policies of §3.2/§4.2), but at flow granularity so 24-hour
// whole-fleet horizons are tractable. Demand follows the diurnal profile
// of §4.1 (~2x peak-to-trough).
//
// Consumers stream records into FbflowPipeline (Table 3, Figure 5, the
// sampling-rate ablation) and LinkStats via Router (§4.1 utilization).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fbdcsim/core/distributions.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/peer_selection.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::workload {

/// Fast (role, scope) peer lookup shared across all source hosts — the
/// fleet-wide equivalent of services::PeerSelector, without per-host
/// candidate caches.
class RoleIndex {
 public:
  explicit RoleIndex(const topology::Fleet& fleet);

  /// A uniformly chosen peer of `role` within `scope` relative to `src`;
  /// invalid id if none exists.
  [[nodiscard]] core::HostId pick(core::HostId src, core::HostRole role,
                                  services::Scope scope, core::RngStream& rng) const;

 private:
  [[nodiscard]] const std::vector<core::HostId>* bucket_for(const topology::Host& src,
                                                            core::HostRole role,
                                                            services::Scope scope) const;

  const topology::Fleet* fleet_;
  // hosts by (cluster, role), (datacenter, role), and (role) fleet-wide.
  std::vector<std::vector<std::vector<core::HostId>>> by_cluster_role_;
  std::vector<std::vector<std::vector<core::HostId>>> by_dc_role_;
  std::vector<std::vector<core::HostId>> by_role_;
};

struct FleetGenConfig {
  core::Duration horizon = core::Duration::hours(24);
  /// Flow records are drawn per epoch; finer epochs give finer time
  /// structure at proportional cost.
  core::Duration epoch = core::Duration::minutes(30);
  /// Uniform multiplier on per-host byte rates (scaled-down fleets use <1
  /// to keep sampled-record volumes proportional to the real system's).
  double rate_scale = 1.0;
  /// Peer-flows drawn per traffic component per epoch. More flows spread
  /// the same bytes more thinly (finer spatial granularity).
  int flows_per_component = 12;
  core::DiurnalProfile::Params diurnal;
  std::uint64_t seed = 1;
  services::ServiceMix mix;
  /// Optional fault schedule: hosts crashed for the epoch containing a
  /// flow's start emit and receive nothing (the flow is skipped; skips are
  /// counted in the "fleet.host_down_skipped" telemetry counter). Null or
  /// disabled plans take the exact fault-free path. Decisions depend only
  /// on the flow itself, so per-host generation stays shard-independent.
  const faults::FaultPlan* faults = nullptr;
};

class FleetFlowGenerator {
 public:
  FleetFlowGenerator(const topology::Fleet& fleet, FleetGenConfig config);

  using Visit = std::function<void(const core::FlowRecord&)>;

  /// Streams every generated flow record to `visit` (no buffering).
  void generate(const Visit& visit) const;

  /// Generates flows for a single host (all epochs) — used by tests, the
  /// Table 2 bench, and runtime::ShardedFleetRunner. The host's randomness
  /// is forked from the root seed by host ID, so this is safe to call
  /// concurrently for distinct hosts and the output never depends on which
  /// other hosts were generated first.
  void generate_for_host(core::HostId host, const Visit& visit) const;

  [[nodiscard]] const RoleIndex& index() const { return index_; }
  [[nodiscard]] const topology::Fleet& fleet() const { return *fleet_; }

 private:
  struct Component;  // one (dst-role, scope-mix, byte-rate) traffic class

  void emit_component(core::HostId src, const Component& comp, std::int64_t epoch_index,
                      core::RngStream& rng, const Visit& visit) const;
  [[nodiscard]] std::vector<Component> components_for(core::HostRole role) const;

  const topology::Fleet* fleet_;
  FleetGenConfig config_;
  RoleIndex index_;
  core::DiurnalProfile diurnal_;
};

}  // namespace fbdcsim::workload
