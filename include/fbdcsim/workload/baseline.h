// The prior-literature baseline workload (the "Previously published data"
// column of Table 1).
//
// Generates a single host's packet trace with the characteristics reported
// for Microsoft-style datacenters: heavily rack-local destinations (50-80%
// [Benson et al., Delimitrou et al.]), ON/OFF packet arrivals with
// log-normal inter-arrivals and period lengths [Benson et al.], bimodal
// packet sizes (TCP ACKs or near-MTU) [Benson et al.], and fewer than five
// concurrent large flows [Alizadeh et al.]. The contrast benches run the
// same analyses over this trace and over the Facebook-style traces to make
// Table 1's "finding vs. literature" comparisons concrete.
#pragma once

#include <cstdint>
#include <vector>

#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::workload {

struct LiteratureWorkloadConfig {
  /// Fraction of traffic destined within the source rack.
  double rack_local_fraction = 0.65;
  /// Fraction of non-rack traffic leaving the cluster.
  double off_cluster_fraction = 0.15;
  /// Concurrent destination set size (Alizadeh et al.: < 5).
  int concurrent_destinations = 4;
  /// ON/OFF process: log-normal period medians and sigma.
  double on_period_median_ms = 2.0;
  double off_period_median_ms = 8.0;
  double period_sigma = 1.0;
  /// Packet inter-arrival within an ON period (log-normal, Benson et al.).
  double interarrival_median_us = 50.0;
  double interarrival_sigma = 0.8;
  /// Bimodal sizes: probability of a full-MTU packet (else ACK-sized).
  double mtu_fraction = 0.55;
  std::uint64_t seed = 7;
};

/// Generates the baseline trace for `host` over `duration`.
[[nodiscard]] std::vector<core::PacketHeader> generate_literature_trace(
    const topology::Fleet& fleet, core::HostId host, core::Duration duration,
    const LiteratureWorkloadConfig& config = {});

}  // namespace fbdcsim::workload
