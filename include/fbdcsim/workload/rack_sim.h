// Rack-level packet simulation: the synthetic analogue of the paper's
// port-mirroring deployments (Section 3.3.2).
//
// Instantiates the per-role traffic model for every host of one rack, wires
// them into a shared-buffer RSW (per-host downlink ports plus four ECMP
// uplink ports), mirrors the monitored host's — or the whole rack's —
// bidirectional traffic into a CaptureBuffer, and optionally samples the
// switch buffer at 10-us granularity. The result of a run is exactly what
// the paper's collection servers spool to storage: a timestamped
// packet-header trace plus switch counters.
#pragma once

#include <memory>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/monitoring/capture.h"
#include "fbdcsim/services/backend.h"
#include "fbdcsim/services/params.h"
#include "fbdcsim/services/traffic_model.h"
#include "fbdcsim/sim/simulator.h"
#include "fbdcsim/switching/switch.h"
#include "fbdcsim/telemetry/flow_ledger.h"
#include "fbdcsim/telemetry/obs.h"
#include "fbdcsim/telemetry/timeseries.h"
#include "fbdcsim/telemetry/tracepoint.h"
#include "fbdcsim/topology/entities.h"
#include "fbdcsim/transport/params.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::transport {
class TransportMux;
}  // namespace fbdcsim::transport

namespace fbdcsim::workload {

/// Transport backend selection for the service models' traffic.
enum class Transport : std::uint8_t {
  /// Services emit pre-shaped packet timelines directly (the historical
  /// behavior; byte-identical traces to every pre-transport release).
  kScripted,
  /// Services queue byte demands into a flow-level TCP engine
  /// (transport::TransportMux): handshakes, MSS segmentation, ACK
  /// clocking, fast retransmit and RTO recovery all emerge from real
  /// switch deliveries/drops and the fault plan's path-loss decisions.
  kTcp,
};

struct RackSimConfig {
  /// The host whose traffic is captured. Required.
  core::HostId monitored_host;
  /// Mirror every host in the rack (the paper does this for Web racks,
  /// whose utilization is low enough to mirror a whole rack losslessly).
  bool mirror_whole_rack = false;
  /// Traffic generated before the capture window opens, so connection
  /// pools and Hadoop phases reach steady state.
  core::Duration warmup = core::Duration::seconds(2);
  /// Length of the mirrored capture.
  core::Duration capture = core::Duration::seconds(60);
  /// RSW configuration (buffer size, DT alpha).
  switching::SwitchConfig rsw;
  int uplink_ports = 4;
  /// Enable the 10-us buffer occupancy sampler (Figure 15).
  bool sample_buffer = false;
  /// Collection-host memory for the capture (bounds trace length).
  std::int64_t capture_memory_bytes = 8LL * 1024 * 1024 * 1024;
  std::uint64_t seed = 1;
  services::ServiceMix mix;
  /// Rate multiplier applied to rack neighbours that are NOT mirrored.
  /// Their traffic only matters for switch-buffer pressure, so analyses of
  /// the mirrored host's trace are unaffected; keep at 1.0 for the buffer
  /// experiments (Figure 15), lower it to speed up trace-only experiments.
  double background_rate_scale = 1.0;
  /// Transport backend. kScripted preserves byte-identical traces with
  /// every pre-transport release; kTcp makes packet-scale structure
  /// emergent (SYN interarrivals, ACK/MSS size bimodality, retransmits).
  Transport transport = Transport::kScripted;
  /// Flow-level TCP tuning, used only when `transport == kTcp`.
  transport::TcpParams tcp;
  /// Event-engine selection. kBucketed is the production engine;
  /// kReference exists for the differential bit-identity harness
  /// (tests/sim/engine_differential_*) and engine benchmarks.
  sim::Simulator::Engine engine = sim::Simulator::Engine::kBucketed;
  /// Sim-time observability (DESIGN.md §11). Off by default: runs stay
  /// byte-identical to pre-observability releases. When enabled (and
  /// telemetry is compiled in and runtime-enabled), a TimeSeriesProbe
  /// samples switch/transport gauges every probe_period and a flight
  /// recorder retains the last N tracepoints; both surface in
  /// RackSimResult, and Mode::kDump also prints the recorder to stderr
  /// after the run.
  telemetry::ObsConfig obs;
  /// Optional fault schedule (must outlive the simulation). When set and
  /// enabled: the RSW shared buffer may start shrunken, failed uplinks
  /// leave the ECMP set, degraded uplinks run at reduced rate, and the
  /// mirror drops frames under buffer pressure (counted in
  /// capture_dropped / capture_injected_dropped). Null is the zero-cost
  /// opt-out: the run is bit-identical to a fault-free one.
  const faults::FaultPlan* faults = nullptr;
};

struct RackSimResult {
  /// The mirrored packet-header trace, in timestamp order, capture window
  /// only (timestamps are absolute simulation time).
  std::vector<core::PacketHeader> trace;
  /// Capture losses: buffer overflow plus fault-injected mirror drops
  /// (zero for fault-free runs; the paper's RSWs mirror losslessly).
  std::int64_t capture_dropped{0};
  /// The fault-injected subset of capture_dropped.
  std::int64_t capture_injected_dropped{0};
  /// Per-second buffer occupancy stats, when sampling was enabled.
  std::vector<switching::BufferOccupancySampler::SecondStats> buffer_seconds;
  /// Aggregate uplink counters over the whole run (all uplink ports).
  switching::PortCounters uplink;
  /// Aggregate downlink (host-port) counters.
  switching::PortCounters downlinks;
  /// Total simulation events executed (performance observability).
  std::uint64_t events{0};
  core::TimePoint capture_start;
  core::TimePoint capture_end;
  /// Sim-time observability output (empty unless config.obs is enabled and
  /// telemetry is active): the probe's downsampled series, sorted by name,
  /// and the flight recorder's retained tracepoints.
  std::vector<telemetry::SeriesSnapshot> timeseries;
  telemetry::TracePointDump tracepoints;
  /// Per-flow lifecycle records (empty unless FBDCSIM_OBS=flows and
  /// transport == kTcp): closed transfers oldest-first, with causal drop
  /// attribution for every retransmission (DESIGN.md §14).
  telemetry::FlowLedgerDump flows;
};

/// Runs one rack-level packet simulation. The fleet must outlive the run.
class RackSimulation : public services::TrafficSink {
 public:
  RackSimulation(const topology::Fleet& fleet, RackSimConfig config);
  ~RackSimulation() override;

  RackSimulation(const RackSimulation&) = delete;
  RackSimulation& operator=(const RackSimulation&) = delete;

  [[nodiscard]] RackSimResult run();

  // TrafficSink interface (used by the service models).
  void host_send(const services::SimPacket& packet) override;
  void host_receive(const services::SimPacket& packet) override;
  transport::DemandSink* transport() override;

  /// The flow-level TCP engine (null in scripted mode). Exposed so tests
  /// and benches can read transport stats after a run.
  [[nodiscard]] const transport::TransportMux* transport_mux() const {
    return transport_.get();
  }

 private:
  [[nodiscard]] std::size_t egress_port_for(const services::SimPacket& packet) const;
  void observe(const core::PacketHeader& header);

  const topology::Fleet* fleet_;
  RackSimConfig config_;
  services::ServiceMix background_mix_;
  core::RackId rack_;

  sim::Simulator sim_{config_.engine};
  std::unique_ptr<switching::SharedBufferSwitch> rsw_;
  /// Flow-level TCP engine; null in scripted mode. Constructed before the
  /// models so Wire can pick it up via TrafficSink::transport().
  std::unique_ptr<transport::TransportMux> transport_;
  std::unique_ptr<switching::BufferOccupancySampler> sampler_;
  /// Observability state (null unless config_.obs opted in): the flight
  /// recorder exists from construction (fault epochs record at t=0), the
  /// probe timer only during run().
  std::unique_ptr<telemetry::TracePointLog> tracepoints_;
  std::unique_ptr<telemetry::TimeSeriesProbe> probe_;
  /// Per-flow lifecycle ledger (null unless config_.obs.flows opted in and
  /// the transport is kTcp — scripted packets carry no transport lifecycle).
  std::unique_ptr<telemetry::FlowLedger> flow_ledger_;
  std::unique_ptr<sim::PeriodicTimer> probe_timer_;
  monitoring::CaptureBuffer capture_buffer_;
  std::unique_ptr<monitoring::PortMirror> mirror_;
  std::vector<std::unique_ptr<services::TrafficModel>> models_;

  /// Port map: ports [0, hosts) are host downlinks (rack position order);
  /// ports [hosts, hosts + uplinks) are CSW uplinks.
  std::size_t num_host_ports_{0};
  /// Uplink port indices still in the ECMP set after fault evaluation
  /// (all uplinks when fault-free or when every uplink failed).
  std::vector<std::size_t> live_uplinks_;
  bool faulted_{false};
  core::TimePoint capture_start_;
  bool capturing_{false};
};

/// Multiplies every rate-valued field of the mix by `factor` — used by the
/// diurnal Figure 15 bench and load sweeps.
[[nodiscard]] services::ServiceMix scale_rates(const services::ServiceMix& mix, double factor);

}  // namespace fbdcsim::workload
