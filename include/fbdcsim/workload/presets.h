// Canonical fleets and configurations used by the benches and examples, so
// every experiment runs against the same simulated "datacenter" unless it
// deliberately varies it.
#pragma once

#include "fbdcsim/topology/standard_fleet.h"
#include "fbdcsim/workload/rack_sim.h"

namespace fbdcsim::workload {

/// The fleet used for packet-level (port-mirror) experiments: large
/// clusters so destination dispersion matches the paper (a cache follower
/// touches ~250 racks in 5 ms; Frontend clusters have hundreds of racks).
/// Only the monitored rack is packet-simulated, so fleet size costs memory,
/// not events.
[[nodiscard]] topology::Fleet build_rack_experiment_fleet();

/// The smaller fleet used for fleet-level (Fbflow) experiments, where every
/// host generates flows over long horizons.
[[nodiscard]] topology::Fleet build_fleet_experiment_fleet();

/// A monitored host of the given role in the rack-experiment fleet (the
/// first host of the first rack of that role in the first matching
/// cluster), mirroring the paper's five monitored racks.
[[nodiscard]] core::HostId monitored_host(const topology::Fleet& fleet, core::HostRole role);

/// Default RackSimConfig for a monitored host of the given role: whole-rack
/// mirroring for Web racks (as in the paper), single-host otherwise.
[[nodiscard]] RackSimConfig default_rack_config(const topology::Fleet& fleet,
                                                core::HostRole role,
                                                core::Duration capture = core::Duration::seconds(30));

}  // namespace fbdcsim::workload
