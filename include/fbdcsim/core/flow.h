// Flow-level records: the unit of the fleet-scale (Fbflow-style) pipeline.
//
// In fleet mode, services emit FlowRecords directly — the analytic equivalent
// of the packet streams that Fbflow's 1:30,000 sampling would observe; see
// monitoring/fbflow.h for the thinning step.
#pragma once

#include <cstdint>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::core {

/// The role a machine plays. Every Facebook machine has exactly one role
/// (Section 3.1), and racks are role-homogeneous.
enum class HostRole : std::uint8_t {
  kWeb,
  kCacheFollower,
  kCacheLeader,
  kHadoop,
  kMultifeed,
  kSlb,
  kDatabase,
  kService,  // miscellaneous supporting services ("Rest" in Table 2)
};

[[nodiscard]] const char* to_string(HostRole role);

/// Destination locality relative to the sending host (Section 4.2's four-way
/// classification). Values are ordered from nearest to farthest.
enum class Locality : std::uint8_t {
  kIntraRack,
  kIntraCluster,
  kIntraDatacenter,
  kInterDatacenter,
};

inline constexpr int kNumLocalities = 4;

[[nodiscard]] const char* to_string(Locality locality);

/// A completed (or in-progress) transport flow as the fleet pipeline sees it.
struct FlowRecord {
  FiveTuple tuple;
  HostId src_host;
  HostId dst_host;
  TimePoint start;
  Duration duration;
  DataSize bytes;       // transport payload bytes carried src -> dst
  std::int64_t packets{0};

  [[nodiscard]] TimePoint end() const { return start + duration; }
  [[nodiscard]] DataRate mean_rate() const { return rate_of(bytes, duration); }
};

}  // namespace fbdcsim::core
