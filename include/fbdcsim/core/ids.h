// Strongly-typed integer identifiers for topology entities.
//
// Each entity kind gets its own ID type so a HostId can never be passed where
// a RackId is expected. IDs are dense indices assigned by the topology
// builder, which makes them directly usable as vector indices.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>

namespace fbdcsim::core {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_{v} {}

  [[nodiscard]] static constexpr Id invalid() { return Id{}; }
  [[nodiscard]] constexpr bool is_valid() const { return value_ != kInvalid; }
  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_{kInvalid};
};

struct HostTag {};
struct RackTag {};
struct ClusterTag {};
struct DatacenterTag {};
struct SiteTag {};
struct SwitchTag {};
struct LinkTag {};
struct JobTag {};
struct ObjectTag {};

using HostId = Id<HostTag>;
using RackId = Id<RackTag>;
using ClusterId = Id<ClusterTag>;
using DatacenterId = Id<DatacenterTag>;
using SiteId = Id<SiteTag>;
using SwitchId = Id<SwitchTag>;
using LinkId = Id<LinkTag>;
using JobId = Id<JobTag>;
using ObjectId = Id<ObjectTag>;

}  // namespace fbdcsim::core

namespace std {
template <typename Tag>
struct hash<fbdcsim::core::Id<Tag>> {
  size_t operator()(fbdcsim::core::Id<Tag> id) const noexcept {
    return std::hash<typename fbdcsim::core::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
