// Packet-header records: the unit captured by port mirroring and sampled by
// Fbflow. We model exactly the fields the paper's collection pipeline parses
// (addresses, ports, protocol, lengths, TCP flags, timestamp) — payloads are
// never captured, matching the header-only methodology of Section 3.3.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::core {

enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// TCP flag bits (subset the analyses need). `ece` is the ECN-Echo bit a
/// DCTCP receiver sets on ACKs of CE-marked segments; it stays false on
/// every pre-DCTCP path, so traces and fingerprints are unchanged unless
/// TcpParams::cc opts in.
struct TcpFlags {
  bool syn{false};
  bool ack{false};
  bool fin{false};
  bool rst{false};
  bool psh{false};
  bool ece{false};

  friend constexpr bool operator==(TcpFlags, TcpFlags) = default;
};

/// The classic transport 5-tuple identifying a flow.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  Port src_port{0};
  Port dst_port{0};
  Protocol protocol{Protocol::kTcp};

  /// The tuple for traffic in the opposite direction.
  [[nodiscard]] constexpr FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// Ethernet framing constants for the monitored hosts (10-Gbps, 1500-B MTU).
namespace wire {
inline constexpr std::int64_t kMtuBytes = 1500;               // IP MTU
inline constexpr std::int64_t kEthernetHeaderBytes = 14;      // no VLAN tag
inline constexpr std::int64_t kIpv4HeaderBytes = 20;
inline constexpr std::int64_t kTcpHeaderBytes = 20;           // no options
inline constexpr std::int64_t kUdpHeaderBytes = 8;
inline constexpr std::int64_t kMinFrameBytes = 64;
inline constexpr std::int64_t kTcpAckFrameBytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes;  // 54, padded to 64 on wire
inline constexpr std::int64_t kMaxTcpPayloadBytes =
    kMtuBytes - kIpv4HeaderBytes - kTcpHeaderBytes;  // 1460 (MSS)

/// Frame length on the wire for a TCP segment carrying `payload` bytes.
[[nodiscard]] constexpr std::int64_t tcp_frame_bytes(std::int64_t payload) {
  const std::int64_t raw = kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes + payload;
  return raw < kMinFrameBytes ? kMinFrameBytes : raw;
}

/// TCP option bytes of a SACK option carrying one block: kind + length +
/// one (left, right) edge pair, NOP-padded to a 32-bit boundary (RFC 2018).
inline constexpr std::int64_t kTcpSackOptionBytes = 12;
}  // namespace wire

/// A captured packet header, as produced by the port-mirror tap or sampled by
/// an Fbflow agent. `frame_bytes` is the full on-wire frame length (what link
/// utilization and buffer occupancy are accounted in); `payload_bytes` is the
/// transport payload (what flow byte counts are accounted in).
struct PacketHeader {
  TimePoint timestamp;
  FiveTuple tuple;
  std::int64_t frame_bytes{0};
  std::int64_t payload_bytes{0};
  TcpFlags flags;

  [[nodiscard]] DataSize frame_size() const { return DataSize::bytes(frame_bytes); }
  [[nodiscard]] DataSize payload_size() const { return DataSize::bytes(payload_bytes); }
};

/// A packet in flight through the simulated rack: the captured header plus
/// the routing endpoints the switch fabric needs. This is the canonical
/// definition — `switching::SimPacket` and `services::SimPacket` are
/// aliases (historically each layer declared its own copy).
///
/// The trailing fields are flow-level transport metadata (see
/// transport/mux.h). They are zero for scripted traffic, are not part of
/// the captured PacketHeader, and never reach any analysis: `flow_tag`
/// identifies the owning TcpConnection (pool index + generation, so stale
/// in-flight packets from a recycled connection are ignored), and
/// `seq`/`ack` carry the byte-stream positions the TCP model reacts to.
/// IP-header ECN codepoint of an in-flight packet. Scripted traffic and
/// NewReno senders leave kNotEct; a DCTCP sender stamps data segments
/// kEct, and a congested switch rewrites kEct -> kCe on enqueue. Not part
/// of the captured PacketHeader (the collection pipeline parses neither
/// TOS byte), so marking never perturbs traces or analyses.
enum class Ecn : std::uint8_t {
  kNotEct = 0,  // sender did not opt in; switches never mark
  kEct = 1,     // ECN-capable transport
  kCe = 3,      // congestion experienced (marked by a switch)
};

struct SimPacket {
  PacketHeader header;
  HostId src;
  HostId dst;
  std::uint32_t flow_tag{0};
  std::uint64_t seq{0};  // first payload byte index of this segment
  std::uint64_t ack{0};  // cumulative ack (meaningful when header.flags.ack)
  Ecn ecn{Ecn::kNotEct};
  // One SACK block [sack_lo, sack_hi) riding on an ACK (RFC 2018 first-block
  // rule: the range containing the most recently received out-of-order
  // segment). Zero — no block — for scripted traffic, all data segments,
  // and every ACK of a LossRecovery::kNewReno connection. Like seq/ack/ecn
  // these never reach the captured PacketHeader, though a block-carrying
  // ACK's frame_bytes does grow by wire::kTcpSackOptionBytes.
  std::int64_t sack_lo{0};
  std::int64_t sack_hi{0};
};

}  // namespace fbdcsim::core

namespace std {
template <>
struct hash<fbdcsim::core::FiveTuple> {
  size_t operator()(const fbdcsim::core::FiveTuple& t) const noexcept {
    // FNV-1a over the tuple fields: cheap, deterministic across runs.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(t.src_ip.value());
    mix(t.dst_ip.value());
    mix(static_cast<std::uint64_t>(t.src_port) << 32 | t.dst_port);
    mix(static_cast<std::uint64_t>(t.protocol));
    return static_cast<size_t>(h);
  }
};
}  // namespace std
