// Deterministic, named random-number streams.
//
// Every stochastic component in the simulator draws from an RngStream derived
// from (root seed, component name). Re-running any experiment with the same
// seed reproduces it bit-for-bit, and adding a new component never perturbs
// the draws of existing ones — a property ordinary shared-engine designs lack.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace fbdcsim::core {

/// splitmix64: used to whiten seeds and hash stream names.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a hash of a stream name, for deriving per-component seeds.
[[nodiscard]] constexpr std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// A self-contained random stream (mt19937_64) with convenience samplers.
/// Forking derives an independent child stream from this stream's seed and a
/// name/index — the number of values already drawn does not affect forks.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : seed_{seed}, engine_{splitmix64(seed)} {}

  /// Derive a child stream; children with distinct names are independent.
  [[nodiscard]] RngStream fork(std::string_view name) const {
    return RngStream{splitmix64(seed_ ^ hash_name(name))};
  }

  /// Derive a child stream indexed by an integer (e.g. per-host streams).
  [[nodiscard]] RngStream fork(std::string_view name, std::uint64_t index) const {
    return RngStream{splitmix64(splitmix64(seed_ ^ hash_name(name)) + index)};
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Poisson-distributed count with the given mean.
  [[nodiscard]] std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>{mean}(engine_);
  }

  /// Normally distributed value.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Root of an experiment's randomness: a convenience alias emphasizing that
/// one stream is created per run and everything else is forked from it.
using RngRoot = RngStream;

}  // namespace fbdcsim::core
