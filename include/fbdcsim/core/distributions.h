// Parametric and empirical distributions used by the workload models.
//
// The paper reports heavy-tailed flow sizes, log-normal-style burstiness in
// prior work, and Zipf-like object popularity in the cache tier; these
// samplers are the generative building blocks. All sampling is explicit-RNG
// (no hidden state) per the determinism rules in DESIGN.md §6.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "fbdcsim/core/rng.h"
#include "fbdcsim/core/time.h"

namespace fbdcsim::core {

/// Log-normal distribution parameterized by the *linear-space* median and the
/// log-space sigma — far easier to calibrate against reported medians than
/// the raw (mu, sigma) pair.
class LogNormal {
 public:
  LogNormal(double median, double sigma) : mu_{std::log(median)}, sigma_{sigma} {
    if (median <= 0.0 || sigma < 0.0) throw std::invalid_argument{"LogNormal: bad params"};
  }

  [[nodiscard]] double sample(RngStream& rng) const {
    return std::exp(rng.normal(mu_, sigma_));
  }

  [[nodiscard]] double median() const { return std::exp(mu_); }
  [[nodiscard]] double mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto: heavy-tailed sizes in [lo, hi] with shape alpha.
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi) : alpha_{alpha}, lo_{lo}, hi_{hi} {
    if (alpha <= 0.0 || lo <= 0.0 || hi <= lo) throw std::invalid_argument{"BoundedPareto: bad params"};
  }

  [[nodiscard]] double sample(RngStream& rng) const {
    // Inverse-CDF of the truncated Pareto.
    const double u = rng.uniform();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Zipf distribution over ranks {0, ..., n-1} with exponent s, sampled by
/// inverse CDF over a precomputed table (O(log n) per draw, exact).
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(RngStream& rng) const;

  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return s_; }

 private:
  double s_;
  double norm_{0.0};
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

/// A distribution defined by an explicit inverse-CDF table of (quantile,
/// value) knots with log-linear interpolation between them. This is how we
/// encode the paper's published CDF shapes (e.g. Figure 6 flow sizes)
/// directly as samplers.
class EmpiricalCdf {
 public:
  struct Knot {
    double quantile;  // in [0, 1], strictly increasing across knots
    double value;     // > 0, non-decreasing across knots
  };

  explicit EmpiricalCdf(std::vector<Knot> knots);

  /// Value at the given quantile (inverse CDF), log-interpolated.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double sample(RngStream& rng) const { return quantile(rng.uniform()); }

  [[nodiscard]] std::span<const Knot> knots() const { return knots_; }

 private:
  std::vector<Knot> knots_;
};

/// Weighted choice over a small fixed set of outcomes, e.g. the Table 2
/// destination-service mix. Weights need not sum to 1.
class DiscreteChoice {
 public:
  explicit DiscreteChoice(std::vector<double> weights);

  [[nodiscard]] std::size_t sample(RngStream& rng) const;
  [[nodiscard]] double probability(std::size_t index) const;
  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized, non-decreasing, back() == 1
};

/// Diurnal rate modulation (Section 4.1): a smooth day/night curve with a
/// configurable peak-to-trough ratio (the paper reports ~2x for Facebook vs.
/// the order-of-magnitude swings reported elsewhere) plus a day-of-week dip.
class DiurnalProfile {
 public:
  struct Params {
    double peak_to_trough{2.0};   // >= 1
    double peak_hour{20.0};       // local hour of peak demand
    double weekend_factor{0.85};  // multiplier applied on days 5 and 6
  };

  explicit DiurnalProfile(Params params);

  /// Multiplicative demand factor at an absolute time-of-run offset.
  /// The mean factor over a full week is ~1, so base rates are calibrated
  /// independently of the modulation.
  [[nodiscard]] double factor_at(Duration since_start) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  double amplitude_;  // derived from peak_to_trough
};

}  // namespace fbdcsim::core
