// Arena and pool allocation for the packet hot path.
//
// The rack-level packet simulation used to churn the global allocator from
// two places: the per-event std::function (fixed by sim::InlineAction) and
// the per-packet queue nodes inside SharedBufferSwitch (std::deque blocks
// allocated and freed as queues grow and shrink). Arena/Pool/PoolQueue
// remove the second: a switch owns one Arena, carves fixed-size nodes out
// of it through a Pool, and every port queue recycles nodes through the
// pool's free list — steady state runs with zero mallocs on the packet
// path.
//
// Telemetry (Kind::kSim — growth is driven purely by simulation state, so
// the counters are bit-identical across thread counts):
//   arena.bytes  bytes obtained from the system allocator (chunk mallocs)
//   arena.reuse  allocations served from recycled memory (pool free-list
//                hits and retired-chunk reuse after reset())
//
// Lifetime rules (DESIGN.md §9): an Arena frees its chunks only on
// destruction; reset() retires them for reuse. Objects created from a Pool
// must be destroyed through the same Pool (or leak their destructor, never
// their memory); a Pool and everything allocated from it must not outlive
// the Arena it draws from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::core {

/// Chunked bump allocator. allocate() is a pointer bump; a fresh chunk is
/// malloc'd (or reused from the retired list) only when the current one is
/// exhausted. Never frees individual allocations.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_{chunk_bytes < sizeof(Chunk) + 64 ? sizeof(Chunk) + 64 : chunk_bytes} {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    release_list(live_);
    release_list(retired_);
  }

  /// Returns `bytes` of storage aligned to `align` (a power of two no
  /// larger than alignof(std::max_align_t)).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (live_ != nullptr) {
      const std::size_t aligned = (live_->used + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= live_->size) {
        live_->used = aligned + bytes;
        return live_->data() + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Retires every chunk for reuse. All outstanding allocations become
  /// invalid; no memory is returned to the system.
  void reset() noexcept {
    while (live_ != nullptr) {
      Chunk* next = live_->next;
      live_->used = 0;
      live_->next = retired_;
      retired_ = live_;
      live_ = next;
    }
  }

  /// Total bytes obtained from the system allocator over the arena's life.
  [[nodiscard]] std::int64_t bytes_from_system() const noexcept { return bytes_from_system_; }
  /// Chunks served from the retired list instead of malloc.
  [[nodiscard]] std::int64_t chunks_reused() const noexcept { return chunks_reused_; }

 private:
  struct Chunk {
    Chunk* next;
    std::size_t used;  // offset of the first free byte within data()
    std::size_t size;  // capacity of data()

    /// Header footprint rounded up so data() stays max-aligned (malloc
    /// returns max-aligned memory; the payload starts header_bytes() in).
    [[nodiscard]] static constexpr std::size_t header_bytes() noexcept {
      constexpr std::size_t raw = sizeof(Chunk*) + 2 * sizeof(std::size_t);
      return (raw + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
    }
    [[nodiscard]] std::byte* data() noexcept {
      return reinterpret_cast<std::byte*>(this) + header_bytes();
    }
  };

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Oversized requests get a dedicated chunk so chunk_bytes_ stays a
    // tuning knob, not a limit.
    const std::size_t header = Chunk::header_bytes();
    std::size_t want = bytes + align;
    if (want < chunk_bytes_ - header) want = chunk_bytes_ - header;

    // Reuse a retired chunk when one is big enough (first fit).
    Chunk** link = &retired_;
    while (*link != nullptr) {
      if ((*link)->size >= want) {
        Chunk* chunk = *link;
        *link = chunk->next;
        chunk->used = 0;
        chunk->next = live_;
        live_ = chunk;
        ++chunks_reused_;
        FBDCSIM_T_COUNTER(reuse, "arena.reuse", Sim);
        FBDCSIM_T_ADD(reuse, 1);
        return allocate(bytes, align);
      }
      link = &(*link)->next;
    }

    auto* raw = static_cast<std::byte*>(std::malloc(header + want));
    if (raw == nullptr) throw std::bad_alloc{};
    auto* chunk = reinterpret_cast<Chunk*>(raw);
    chunk->next = live_;
    chunk->used = 0;
    chunk->size = want;
    live_ = chunk;
    bytes_from_system_ += static_cast<std::int64_t>(header + want);
    FBDCSIM_T_COUNTER(sys_bytes, "arena.bytes", Sim);
    FBDCSIM_T_ADD(sys_bytes, static_cast<std::int64_t>(header + want));
    return allocate(bytes, align);
  }

  static void release_list(Chunk* head) noexcept {
    while (head != nullptr) {
      Chunk* next = head->next;
      std::free(head);
      head = next;
    }
  }

  Chunk* live_{nullptr};     // chunks with outstanding allocations (head is active)
  Chunk* retired_{nullptr};  // reset() chunks awaiting reuse
  std::size_t chunk_bytes_;
  std::int64_t bytes_from_system_{0};
  std::int64_t chunks_reused_{0};
};

/// Fixed-type object pool over an Arena: create/destroy recycle slots
/// through a free list, so steady-state allocation never leaves the pool.
template <typename T>
class Pool {
 public:
  explicit Pool(Arena& arena) : arena_{&arena} {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  template <typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    void* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next;
      ++reused_;
      FBDCSIM_T_COUNTER(reuse, "arena.reuse", Sim);
      FBDCSIM_T_ADD(reuse, 1);
    } else {
      slot = arena_->allocate(sizeof(Slot), alignof(Slot));
    }
    ++live_;
    return ::new (slot) T(std::forward<Args>(args)...);
  }

  void destroy(T* p) noexcept {
    p->~T();
    auto* slot = reinterpret_cast<Slot*>(p);
    slot->next = free_;
    free_ = slot;
    --live_;
  }

  /// Allocations served from the free list instead of the arena.
  [[nodiscard]] std::int64_t reused() const noexcept { return reused_; }
  [[nodiscard]] std::int64_t live() const noexcept { return live_; }

 private:
  union Slot {
    Slot* next;
    alignas(T) std::byte storage[sizeof(T)];
  };

  Arena* arena_;
  Slot* free_{nullptr};
  std::int64_t reused_{0};
  std::int64_t live_{0};
};

/// A FIFO of T backed by pool-recycled singly-linked nodes: the drop-in
/// replacement for the per-port std::deque in SharedBufferSwitch. push/pop
/// at steady state touch only the pool free list.
template <typename T>
class PoolQueue {
 public:
  struct Node {
    T value;
    Node* next{nullptr};
  };
  using NodePool = Pool<Node>;

  PoolQueue() = default;

  PoolQueue(const PoolQueue&) = delete;
  PoolQueue& operator=(const PoolQueue&) = delete;

  PoolQueue(PoolQueue&& other) noexcept
      : pool_{other.pool_}, head_{other.head_}, tail_{other.tail_}, size_{other.size_} {
    other.head_ = other.tail_ = nullptr;
    other.size_ = 0;
  }

  ~PoolQueue() { clear(); }

  /// Binds the queue to the pool its nodes come from. Must be called (once)
  /// before the first push_back.
  void attach(NodePool& pool) noexcept { pool_ = &pool; }

  void push_back(T value) {
    Node* node = pool_->create(std::move(value));
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      tail_ = node;
    }
    ++size_;
  }

  [[nodiscard]] T& front() { return head_->value; }
  [[nodiscard]] const T& front() const { return head_->value; }

  void pop_front() {
    Node* node = head_;
    head_ = node->next;
    if (head_ == nullptr) tail_ = nullptr;
    --size_;
    pool_->destroy(node);
  }

  void clear() noexcept {
    while (head_ != nullptr) {
      Node* next = head_->next;
      pool_->destroy(head_);
      head_ = next;
    }
    tail_ = nullptr;
    size_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  NodePool* pool_{nullptr};
  Node* head_{nullptr};
  Node* tail_{nullptr};
  std::size_t size_{0};
};

}  // namespace fbdcsim::core
