// Streaming and batch statistics used by every analysis.
//
// OnlineStats accumulates moments in one pass (Welford); Cdf holds a sorted
// sample set and answers percentile queries exactly — the paper's figures are
// all CDFs or percentile tables, so exactness beats sketching at our scales.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fbdcsim::core {

/// One-pass mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void merge(const OnlineStats& other);

 private:
  std::int64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// An exact empirical CDF over a collected sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) : samples_{std::move(samples)}, sorted_{false} {
    sort();
  }

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  void add_all(std::span<const double> xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
  }

  /// Absorbs another CDF's samples (the sharded-accumulator merge step:
  /// quantiles of the merged set are independent of merge order).
  void merge(const Cdf& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Value at quantile q in [0, 1] (nearest-rank with linear interpolation).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p10() const { return quantile(0.10); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// Evenly spaced (quantile, value) series for plotting, `points` long.
  struct Point {
    double quantile;
    double value;
  };
  [[nodiscard]] std::vector<Point> series(std::size_t points = 101) const;

  [[nodiscard]] std::span<const double> sorted_samples() const {
    sort();
    return samples_;
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

/// Logarithmically-binned histogram for wide-range quantities (bytes, rates).
class LogHistogram {
 public:
  /// Bins are [lo * base^k, lo * base^(k+1)); values below lo clamp to bin 0.
  LogHistogram(double lo, double base, std::size_t num_bins);

  void add(double x, std::int64_t weight = 1);

  [[nodiscard]] std::size_t bin_of(double x) const;
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] std::int64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }

 private:
  double lo_;
  double log_base_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_{0};
};

}  // namespace fbdcsim::core
