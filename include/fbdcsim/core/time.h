// Simulation time: nanosecond-resolution points and durations.
//
// The simulator uses its own strong time types rather than <chrono> clocks so
// that (a) simulated time is never confused with wall-clock time, and (b) the
// representation (int64 nanoseconds) is explicit, cheap, and deterministic.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace fbdcsim::core {

/// A span of simulated time. Signed, nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t n) { return Duration{n * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t n) { return Duration{n * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t n) { return seconds(n * 3'600); }

  /// Construct from a floating-point count of seconds (rounding to nearest ns).
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }
  constexpr Duration& operator*=(std::int64_t k) { ns_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }
  friend constexpr Duration operator%(Duration a, Duration b) { return Duration{a.ns_ % b.ns_}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ns_}; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering with an adaptive unit, e.g. "12.5ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// An instant on the simulated timeline. Time zero is the start of the run.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint{n}; }
  [[nodiscard]] static constexpr TimePoint from_seconds(double s) {
    return TimePoint{Duration::from_seconds(s).count_nanos()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::nanos(ns_); }

  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_nanos(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { ns_ -= d.count_nanos(); return *this; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns_ + d.count_nanos()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns_ - d.count_nanos()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration::nanos(a.ns_ - b.ns_); }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  /// Index of the fixed-width bin containing this instant (bins start at t=0).
  [[nodiscard]] constexpr std::int64_t bin_index(Duration bin_width) const {
    return ns_ / bin_width.count_nanos();
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

}  // namespace fbdcsim::core
