// Network addresses: IPv4 and transport ports.
//
// The topology assigns addresses with a location-encoding scheme (see
// topology/addressing.h); this header only defines the raw address types.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace fbdcsim::core {

/// An IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value_{v} {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_{(static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d} {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>((value_ >> (8 * (3 - i))) & 0xFF);
  }

  /// Parses dotted-quad notation; returns an all-zero address on failure
  /// (use try_parse when failure must be detected).
  [[nodiscard]] static Ipv4Addr parse(const std::string& dotted);
  [[nodiscard]] static bool try_parse(const std::string& dotted, Ipv4Addr& out);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_{0};
};

/// A TCP/UDP port number.
using Port = std::uint16_t;

/// Well-known service ports used by the synthetic services. These mirror the
/// role of real service ports: they let the flow classifier attribute traffic
/// to a service from headers alone, exactly as Fbflow's taggers do.
namespace ports {
inline constexpr Port kHttp = 80;
inline constexpr Port kMemcache = 11211;
inline constexpr Port kCacheCoherence = 11212;
inline constexpr Port kMysql = 3306;
inline constexpr Port kHdfs = 50010;
inline constexpr Port kMapReduceShuffle = 13562;
inline constexpr Port kMultifeed = 8086;
inline constexpr Port kSlb = 9000;
inline constexpr Port kEphemeralBase = 32768;
}  // namespace ports

}  // namespace fbdcsim::core

namespace std {
template <>
struct hash<fbdcsim::core::Ipv4Addr> {
  size_t operator()(fbdcsim::core::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
}  // namespace std
