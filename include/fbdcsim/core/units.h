// Data-size and data-rate vocabulary types.
//
// Sizes are byte counts; rates are bits per second (the unit networks are
// provisioned in). Both are strong types so that a byte count is never
// accidentally used as a bit count or a rate.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "fbdcsim/core/time.h"

namespace fbdcsim::core {

/// An amount of data, in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(std::int64_t n) { return DataSize{n}; }
  [[nodiscard]] static constexpr DataSize kilobytes(std::int64_t n) { return DataSize{n * 1'000}; }
  [[nodiscard]] static constexpr DataSize megabytes(std::int64_t n) { return DataSize{n * 1'000'000}; }
  [[nodiscard]] static constexpr DataSize gigabytes(std::int64_t n) { return DataSize{n * 1'000'000'000}; }

  [[nodiscard]] constexpr std::int64_t count_bytes() const { return bytes_; }
  [[nodiscard]] constexpr std::int64_t count_bits() const { return bytes_ * 8; }
  [[nodiscard]] constexpr double to_kilobytes() const { return static_cast<double>(bytes_) / 1e3; }
  [[nodiscard]] constexpr double to_megabytes() const { return static_cast<double>(bytes_) / 1e6; }
  [[nodiscard]] constexpr bool is_zero() const { return bytes_ == 0; }

  constexpr DataSize& operator+=(DataSize s) { bytes_ += s.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize s) { bytes_ -= s.bytes_; return *this; }

  friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize{a.bytes_ + b.bytes_}; }
  friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize{a.bytes_ - b.bytes_}; }
  friend constexpr DataSize operator*(DataSize a, std::int64_t k) { return DataSize{a.bytes_ * k}; }
  friend constexpr DataSize operator*(std::int64_t k, DataSize a) { return a * k; }
  friend constexpr DataSize operator/(DataSize a, std::int64_t k) { return DataSize{a.bytes_ / k}; }
  friend constexpr std::int64_t operator/(DataSize a, DataSize b) { return a.bytes_ / b.bytes_; }

  friend constexpr auto operator<=>(DataSize, DataSize) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit DataSize(std::int64_t b) : bytes_{b} {}
  std::int64_t bytes_{0};
};

/// A data rate, in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bits_per_sec(std::int64_t n) { return DataRate{n}; }
  [[nodiscard]] static constexpr DataRate kilobits_per_sec(std::int64_t n) { return DataRate{n * 1'000}; }
  [[nodiscard]] static constexpr DataRate megabits_per_sec(std::int64_t n) { return DataRate{n * 1'000'000}; }
  [[nodiscard]] static constexpr DataRate gigabits_per_sec(std::int64_t n) { return DataRate{n * 1'000'000'000}; }

  [[nodiscard]] constexpr std::int64_t count_bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double to_megabits_per_sec() const { return static_cast<double>(bps_) / 1e6; }
  [[nodiscard]] constexpr double to_gigabits_per_sec() const { return static_cast<double>(bps_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }

  /// Time to serialize `size` at this rate. Requires a non-zero rate.
  [[nodiscard]] constexpr Duration transmission_time(DataSize size) const {
    // bits * (1e9 ns/s) / (bits/s), computed in double to avoid overflow on
    // large sizes, then rounded to the nearest nanosecond.
    const double ns = static_cast<double>(size.count_bits()) * 1e9 / static_cast<double>(bps_);
    return Duration::nanos(static_cast<std::int64_t>(ns + 0.5));
  }

  /// Data transferred in `d` at this rate (rounded down to whole bytes).
  [[nodiscard]] constexpr DataSize transferred_in(Duration d) const {
    const double bytes = static_cast<double>(bps_) / 8.0 * d.to_seconds();
    return DataSize::bytes(static_cast<std::int64_t>(bytes));
  }

  friend constexpr DataRate operator+(DataRate a, DataRate b) { return DataRate{a.bps_ + b.bps_}; }
  friend constexpr DataRate operator-(DataRate a, DataRate b) { return DataRate{a.bps_ - b.bps_}; }
  friend constexpr DataRate operator*(DataRate a, std::int64_t k) { return DataRate{a.bps_ * k}; }
  friend constexpr DataRate operator/(DataRate a, std::int64_t k) { return DataRate{a.bps_ / k}; }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t bps) : bps_{bps} {}
  std::int64_t bps_{0};
};

/// The average rate achieved by moving `size` over `elapsed` time.
[[nodiscard]] constexpr DataRate rate_of(DataSize size, Duration elapsed) {
  if (elapsed.is_zero()) return DataRate{};
  const double bps = static_cast<double>(size.count_bits()) / elapsed.to_seconds();
  return DataRate::bits_per_sec(static_cast<std::int64_t>(bps + 0.5));
}

}  // namespace fbdcsim::core
