// Concurrent execution of independent packet-level simulations.
//
// The discrete-event Simulator is strictly single-threaded; rack-level
// experiments that need several captures (the anchor scorecard's four
// monitored roles, a sweep's ablation points) get their parallelism by
// running one Simulator per task. Each task owns its whole simulation —
// RackSimConfig, RackSimulation, result — and shares only the immutable
// Fleet, so tasks are embarrassingly parallel and each remains individually
// deterministic under its own seed.
#pragma once

#include <functional>
#include <vector>

#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::runtime {

class ParallelCaptureRunner {
 public:
  explicit ParallelCaptureRunner(ThreadPool& pool) : pool_{&pool} {}

  /// Runs every task on the pool and returns their results in task order.
  /// A task's exception propagates to the caller (lowest task index wins)
  /// after the whole batch has finished. An empty batch is explicitly a
  /// no-op: it returns an empty vector without touching the pool, and a
  /// 1-element batch returns exactly that task's result (merge order is
  /// trivially stable — there is nothing to interleave).
  template <typename R>
  [[nodiscard]] std::vector<R> run(const std::vector<std::function<R()>>& tasks) const {
    if (tasks.empty()) return {};
    return pool_->parallel_map(tasks, [](const std::function<R()>& task) {
      FBDCSIM_T_SPAN(task_span, "runtime.capture_task");
      return task();
    });
  }

  [[nodiscard]] int workers() const { return pool_->size(); }

 private:
  ThreadPool* pool_;
};

}  // namespace fbdcsim::runtime
