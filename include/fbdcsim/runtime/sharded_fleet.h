// Parallel fleet-scale flow generation with serial-identical output.
//
// FleetFlowGenerator derives every host's randomness by forking the root
// stream per host (`fork("fleet-host", host)`), so a host's flow sequence is
// independent of when — or on which thread — it is generated. The runner
// exploits that: hosts are partitioned into fixed-size shards, workers
// generate shards concurrently into private buffers, and the caller consumes
// the buffers in canonical host-ID order. The delivered flow stream is
// therefore bit-identical to `FleetFlowGenerator::generate`, for any worker
// count, so every downstream aggregate (Table 3 locality matrix, Figure 5
// traffic matrices, §4.1 link utilization) is bit-identical too.
//
// The shard size is fixed in ShardOptions rather than derived from the pool
// width, so the shard structure — and any per-shard accumulator a caller
// might merge — does not change when FBDCSIM_THREADS does.
#pragma once

#include <cstddef>
#include <vector>

#include "fbdcsim/core/flow.h"
#include "fbdcsim/runtime/thread_pool.h"
#include "fbdcsim/workload/fleet_flows.h"

namespace fbdcsim::runtime {

struct ShardOptions {
  /// Hosts per shard — the unit of work handed to one worker.
  std::size_t shard_size = 32;
  /// Completed shards allowed to wait, queued or buffered, ahead of the
  /// in-order consumer; bounds memory to roughly this many shards' flow
  /// records. 0 means 2x the pool's worker count.
  std::size_t max_buffered_shards = 0;
};

/// Runs FleetFlowGenerator::generate_for_host across a ThreadPool and
/// delivers the merged flow stream in canonical host-ID order.
class ShardedFleetRunner {
 public:
  ShardedFleetRunner(const workload::FleetFlowGenerator& gen, ThreadPool& pool,
                     ShardOptions options = {});

  /// Streams every flow of every host to `sink`, in exactly the order the
  /// serial `generate` would. `sink` runs on the calling thread only;
  /// worker exceptions and sink exceptions both propagate to the caller
  /// after all in-flight shards have drained.
  ///
  /// Empty-input contract: a fleet with zero hosts streams zero flows and
  /// never touches the pool (num_shards() is 0); a single-host fleet is one
  /// shard, whose merge order is trivially the serial order.
  void stream(const workload::FleetFlowGenerator::Visit& sink) const;

  /// All flows, merged in canonical order (a buffered `stream`). Returns
  /// an empty vector for an empty fleet.
  [[nodiscard]] std::vector<core::FlowRecord> collect_flows() const;

  [[nodiscard]] std::size_t num_hosts() const;
  [[nodiscard]] std::size_t num_shards() const;

 private:
  const workload::FleetFlowGenerator* gen_;
  ThreadPool* pool_;
  ShardOptions options_;
};

}  // namespace fbdcsim::runtime
