// Deterministic parallel execution: a fixed-size worker pool with a bounded
// task queue.
//
// The pool is the substrate of the runtime/ subsystem: ShardedFleetRunner and
// ParallelCaptureRunner schedule their work through it. Nothing in the pool
// itself is stochastic — determinism of results is the responsibility of the
// callers, who must make each task's output independent of execution order
// (the fork-per-host RngStream contract) and merge results in a canonical
// order.
//
// Worker count comes from FBDCSIM_THREADS when set (clamped to >= 1),
// otherwise std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbdcsim::runtime {

/// Effective worker count: FBDCSIM_THREADS if set to a valid positive
/// integer (malformed values are diagnosed on stderr and ignored),
/// otherwise the hardware concurrency (at least 1).
[[nodiscard]] int env_thread_count();

/// A fixed pool of worker threads draining a bounded FIFO task queue.
///
/// `post` enqueues one task and blocks while the queue is at capacity, so an
/// unbounded producer cannot accumulate unbounded backlog. Batch helpers
/// (`parallel_for_each`, `parallel_map`) block the calling thread until the
/// whole batch completes and rethrow the failed task's exception — the one
/// with the lowest index, so which error surfaces does not depend on thread
/// scheduling.
///
/// Tasks must not schedule nested batches on the same pool (a task blocking
/// on pool capacity while occupying a worker can deadlock).
class ThreadPool {
 public:
  explicit ThreadPool(int workers = env_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task; blocks while the queue is full. The task's
  /// exceptions must be handled by the task itself (use the batch helpers
  /// for automatic propagation).
  void post(std::function<void()> task);

  /// Runs fn(0) .. fn(count-1) across the pool and waits for completion.
  /// If any invocation throws, the exception from the lowest-index failure
  /// is rethrown here after every task of the batch has finished.
  void parallel_for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Element-wise map preserving input order. `Out` must be
  /// default-constructible; `fn` must be safe to invoke concurrently.
  template <typename In, typename F>
  [[nodiscard]] auto parallel_map(const std::vector<In>& in, F fn)
      -> std::vector<decltype(fn(std::declval<const In&>()))> {
    std::vector<decltype(fn(std::declval<const In&>()))> out(in.size());
    parallel_for_each(in.size(), [&](std::size_t i) { out[i] = fn(in[i]); });
    return out;
  }

 private:
  /// A queued task plus its enqueue wall time (microseconds; 0 when
  /// telemetry is disabled) so workers can report queue-wait latency.
  struct QueuedTask {
    std::function<void()> fn;
    std::int64_t enqueue_us{0};
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;   // signaled when the queue gains a task
  std::condition_variable space_ready_;  // signaled when the queue frees a slot
  std::deque<QueuedTask> queue_;
  std::size_t max_queue_;
  bool stopping_{false};
};

}  // namespace fbdcsim::runtime
