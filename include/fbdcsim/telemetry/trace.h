// Hierarchical wall-clock timing spans.
//
// A TraceSpan measures one scoped region (a capture, a shard generation, a
// pool task) and records a TraceEvent into the Tracer when it closes. Spans
// nest: each thread keeps a depth counter, so events reconstruct the call
// tree, and the Chrome trace exporter (export.h) renders them as stacked
// slices per thread in chrome://tracing or Perfetto.
//
// Span timestamps are wall-clock by definition, so everything here is
// Kind::kWall territory — trace output is never part of a bit-identity
// comparison. Recording is a short critical section on the global Tracer;
// spans are coarse-grained (tasks, shards, whole captures — never
// per-packet), so contention is negligible next to the work they measure.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fbdcsim/telemetry/metrics.h"

namespace fbdcsim::telemetry {

/// One completed span, in Chrome trace-event terms a "complete" (ph: "X")
/// slice on thread `tid`.
struct TraceEvent {
  std::string name;    // span name; "name:detail" when a detail was given
  std::uint32_t tid{0};
  std::uint32_t depth{0};   // nesting depth at open time (0 = top level)
  std::int64_t start_us{0}; // microseconds since the tracer's epoch
  std::int64_t dur_us{0};
};

/// Collects TraceEvents. The epoch is fixed at construction so all events
/// share one timebase.
class Tracer {
 public:
  Tracer();

  [[nodiscard]] static Tracer& global();

  void record(TraceEvent event);

  /// All events so far, sorted by (start_us, tid, depth).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Microseconds elapsed since this tracer's epoch (monotonic clock).
  [[nodiscard]] std::int64_t now_us() const;

  /// Dense id of the calling thread (assigned on first use).
  [[nodiscard]] static std::uint32_t this_thread_id() noexcept;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::int64_t epoch_ns_;  // steady_clock time at construction
};

/// RAII span: opens at construction, records at destruction. Construction
/// while Telemetry is disabled produces a fully inert object (and the
/// matching destructor stays inert even if telemetry is re-enabled
/// mid-span, so depths never corrupt).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Tracer& tracer = Tracer::global());
  TraceSpan(const char* name, std::string detail, Tracer& tracer = Tracer::global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_{nullptr};  // null = inert
  std::string name_;
  std::uint32_t depth_{0};
  std::int64_t start_us_{0};
};

/// RAII timer: measures its scope and observes the elapsed microseconds
/// into a Histogram (declare it Kind::kWall). Optionally also records a
/// span under `span_name`. Inert while telemetry is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, const char* span_name = nullptr,
                       Tracer& tracer = Tracer::global());
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_{nullptr};  // null = inert
  Tracer* tracer_{nullptr};
  const char* span_name_{nullptr};
  std::uint32_t depth_{0};
  std::int64_t start_us_{0};
};

}  // namespace fbdcsim::telemetry
