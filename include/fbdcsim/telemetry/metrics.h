// Metric primitives and the registry that owns them.
//
// Hot-path mutations never contend: counters and histograms spread their
// state over cache-line-aligned shards indexed by a per-thread slot, and all
// updates are relaxed atomics. Aggregation happens only on snapshot(), where
// shards are summed — the same merge-on-read discipline as core::Cdf::merge
// and FbflowPipeline::merge in the parallel runtime.
//
// Snapshots are plain data and merge associatively and commutatively
// (counters/histogram bins sum, gauges take the max), so snapshots taken
// from independent registries — or the same registry at different times —
// can be combined in any grouping with identical results.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fbdcsim::telemetry {

/// Determinism class of a metric (DESIGN.md §7).
enum class Kind : std::uint8_t {
  kSim,   // derived from simulation state; bit-identical across thread counts
  kWall,  // wall-clock / scheduling derived; excluded from identity gates
};

[[nodiscard]] const char* to_string(Kind kind);

/// Process-wide runtime switch. The compile-time FBDCSIM_TELEMETRY toggle
/// removes instrumentation sites entirely; this switch silences the ones
/// that remain. Initial state comes from the FBDCSIM_TELEMETRY environment
/// variable (0/1/on/off/true/false; malformed values are diagnosed on
/// stderr and treated as on).
class Telemetry {
 public:
  [[nodiscard]] static bool enabled() noexcept {
    return state().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    state().store(on, std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& state() noexcept;
};

namespace detail {
/// Dense per-thread slot in [0, kShards) for shard selection. Threads hash
/// to slots round-robin in creation order, so a pool of N <= kShards
/// workers never shares a shard.
inline constexpr std::size_t kShards = 16;
[[nodiscard]] std::size_t this_thread_shard() noexcept;

struct alignas(64) ShardCell {
  std::atomic<std::int64_t> v{0};
};
}  // namespace detail

/// Monotonic sum, sharded. add() is one relaxed fetch_add on this thread's
/// shard; value() folds the shards.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    cells_[detail::this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardCell, detail::kShards> cells_;
};

/// Last-written / high-water value. Unsharded: gauges are written rarely
/// (configuration, peaks), never per event.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (atomic high-water mark).
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-scale histogram of non-negative integer samples (latencies in
/// microseconds, depths, sizes). Bins are exact below 16 and then 8
/// sub-buckets per power of two (<= 12.5% relative width), the standard
/// HDR-style layout. observe() is two relaxed fetch_adds on this thread's
/// shard; quantiles are computed from the merged bins on snapshot.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kBins =
      (64 - kSubBits + 1) << kSubBits;  // indices for the full int64 range

  void observe(std::int64_t value) noexcept;

  [[nodiscard]] static std::size_t bin_for(std::int64_t value) noexcept {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    if (v < (1u << (kSubBits + 1))) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) +
           ((v >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
  }

  /// Midpoint of the value range a bin covers (used for quantile readout).
  [[nodiscard]] static double bin_midpoint(std::size_t bin) noexcept;

  void reset() noexcept;

 private:
  friend class MetricsRegistry;

  struct Shard {
    std::array<std::atomic<std::int64_t>, kBins> bins{};
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
  };
  std::array<Shard, detail::kShards> shards_;
};

/// A point-in-time copy of every metric, plain data, safe to merge, export,
/// and compare. Entries are sorted by name within each section.
struct Snapshot {
  struct CounterValue {
    std::string name;
    Kind kind{Kind::kSim};
    std::int64_t value{0};
  };
  struct GaugeValue {
    std::string name;
    Kind kind{Kind::kSim};
    std::int64_t value{0};
  };
  struct HistogramValue {
    std::string name;
    Kind kind{Kind::kSim};
    std::int64_t count{0};
    double sum{0};
    std::int64_t min{0};  // meaningful only when count > 0
    std::int64_t max{0};
    std::vector<std::int64_t> bins;  // size Histogram::kBins when non-empty

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Value at quantile q in [0, 1], read from the merged bins
    /// (bin-midpoint resolution, clamped to [min, max]).
    [[nodiscard]] double quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Associative, commutative combine: counters and histogram bins sum,
  /// gauges take the max. Mismatched kinds for the same name throw.
  void merge(const Snapshot& other);

  /// Lookup helpers (nullptr when absent).
  [[nodiscard]] const CounterValue* counter(std::string_view name) const;
  [[nodiscard]] const GaugeValue* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramValue* histogram(std::string_view name) const;
};

/// Owns every metric. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; re-requesting a name returns
/// the same handle (requesting it as a different metric type or kind
/// throws). The process-wide instance behind the FBDCSIM_T_* macros is
/// global(); tests may build private registries.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name, Kind kind);
  [[nodiscard]] Gauge& gauge(std::string_view name, Kind kind);
  [[nodiscard]] Histogram& histogram(std::string_view name, Kind kind);

  /// Copies every metric's current value (shards merged).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every metric's value. Handles stay valid.
  void reset();

 private:
  template <typename T>
  struct Entry {
    Kind kind;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>, std::less<>> counters_;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms_;
};

}  // namespace fbdcsim::telemetry
