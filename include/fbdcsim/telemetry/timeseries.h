// Sim-time time-series probes: how a signal *evolved*, not just where it
// ended up.
//
// The paper's collection pipeline (Fbflow -> Scribe -> Scuba) exists to turn
// counters into time-resolved series; this module does the same for the
// simulator. A TimeSeriesProbe samples a set of registered gauges (shared
// buffer occupancy, per-port queue depth, cwnd, active connections, ...) at a
// fixed sim-ns cadence into bounded TimeSeries rings with hierarchical
// downsampling: when a series fills, adjacent bins merge pairwise
// (min/max/last/sum/count-conserving) and the bin width doubles, so a
// day-long run costs the same memory as a one-second one while preserving
// exact extrema and exact means per bin.
//
// Determinism contract (DESIGN.md §11): everything here is keyed to sim time
// and derived purely from simulation state — snapshots and their JSON
// rendering are bit-identical across FBDCSIM_THREADS, engines, and merge
// orders. All state is plain data (no global registry, no atomics): one
// probe belongs to one simulation and is driven by its owner's
// sim::PeriodicTimer via sample_tick(), keeping telemetry free of a sim/
// dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fbdcsim/core/time.h"

namespace fbdcsim::telemetry {

/// One downsampled bin: `count` consecutive samples starting at the sample
/// taken at `start_ns`. Mean is sum/count; min/max/last are exact over the
/// folded samples (integers only, so JSON round-trips losslessly).
struct SeriesBin {
  std::int64_t start_ns{0};
  std::int64_t count{0};
  std::int64_t min{0};
  std::int64_t max{0};
  std::int64_t last{0};
  std::int64_t sum{0};
};

/// Value snapshot of one series: completed bins oldest-first, plus the
/// in-progress partial bin (if any) as the final element.
struct SeriesSnapshot {
  std::string name;
  std::int64_t period_ns{0};    // native sampling cadence
  std::int64_t bin_samples{0};  // samples per completed bin (a power of two)
  std::int64_t samples{0};      // samples ever taken (none are dropped)
  std::vector<SeriesBin> bins;
};

/// Bounded sim-time series with hierarchical downsampling. add_sample() must
/// be called with non-decreasing timestamps (the probe's fixed cadence
/// guarantees this).
class TimeSeries {
 public:
  TimeSeries(std::string name, std::int64_t period_ns, std::size_t capacity);

  void add_sample(std::int64_t t_ns, std::int64_t value);

  [[nodiscard]] SeriesSnapshot snapshot() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t samples() const { return samples_; }
  /// Samples folded into each completed bin (doubles on every compaction).
  [[nodiscard]] std::int64_t bin_samples() const { return bin_samples_; }

 private:
  void compact();

  std::string name_;
  std::int64_t period_ns_;
  std::size_t capacity_;
  std::int64_t bin_samples_{1};
  std::int64_t samples_{0};
  std::vector<SeriesBin> bins_;  // completed bins, oldest-first
  SeriesBin cur_{};              // in-progress bin (valid when cur_count_ > 0)
  std::int64_t cur_count_{0};
};

/// Samples every registered gauge on one fixed cadence. The owner drives it:
/// schedule a sim::PeriodicTimer with period() and call sample_tick(now)
/// from its tick (telemetry cannot depend on sim/ — the simulator links this
/// library). Gauges are sampled in registration order, which the owner keeps
/// deterministic; snapshot() orders series by name so exports never depend
/// on registration order.
class TimeSeriesProbe {
 public:
  using GaugeFn = std::function<std::int64_t()>;

  explicit TimeSeriesProbe(core::Duration period, std::size_t series_capacity = 512);

  /// Registers a gauge; the returned series lives as long as the probe.
  /// `fn` must stay valid for the probe's life. `stride` samples the gauge
  /// only every stride-th tick (starting with the first): gauges whose
  /// evaluation is O(live connections) rather than O(1) — the transport
  /// sums — would otherwise dominate the simulation at rack scale. The
  /// series' recorded period_ns is the effective cadence (period * stride),
  /// and sampling stays a pure function of tick count, so stride never
  /// breaks bit-identity.
  TimeSeries& add_gauge(std::string name, GaugeFn fn, std::int64_t stride = 1);

  /// Samples every gauge at sim time `t_ns`.
  void sample_tick(std::int64_t t_ns);

  /// Every series' snapshot, sorted by name.
  [[nodiscard]] std::vector<SeriesSnapshot> snapshot() const;

  [[nodiscard]] core::Duration period() const { return period_; }
  [[nodiscard]] std::int64_t ticks() const { return ticks_; }
  [[nodiscard]] std::size_t num_series() const { return entries_.size(); }

 private:
  struct Entry {
    std::unique_ptr<TimeSeries> series;  // stable address across push_back
    GaugeFn fn;
    std::int64_t stride{1};
  };

  core::Duration period_;
  std::size_t series_capacity_;
  std::int64_t ticks_{0};
  std::vector<Entry> entries_;
};

/// Finds a series by name in a snapshot list (null when absent).
[[nodiscard]] const SeriesSnapshot* find_series(const std::vector<SeriesSnapshot>& series,
                                                std::string_view name);

/// `{"series":{"<name>":{"period_ns":...,"bin_samples":...,"samples":...,
///   "bins":[[start_ns,count,min,max,last,sum],...]}}}` — series sorted by
/// name, integers only, byte-identical for equal snapshots.
[[nodiscard]] std::string timeseries_to_json(const std::vector<SeriesSnapshot>& series);

}  // namespace fbdcsim::telemetry
