// Exporters: turn Snapshots and trace events into things humans and tools
// consume.
//
//   - print_summary: an aligned table on a FILE*, sim-kind metrics first,
//     wall-kind metrics after a separator (the determinism contract made
//     visible).
//   - to_json: the Snapshot as a JSON object with "sim" and "wall"
//     sections — the payload BenchReport embeds in bench_<name>.json.
//   - to_chrome_trace: trace events as a Chrome trace-event JSON document,
//     loadable in chrome://tracing and https://ui.perfetto.dev.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fbdcsim/telemetry/metrics.h"
#include "fbdcsim/telemetry/trace.h"
#include "fbdcsim/telemetry/tracepoint.h"

namespace fbdcsim::telemetry {

/// Aligned, human-readable dump of every metric, grouped by Kind.
void print_summary(std::FILE* out, const Snapshot& snapshot);

/// `{"sim": {"counters": {...}, "gauges": {...}, "histograms": {...}},
///   "wall": {...}}`. Histograms export count/sum/min/max/mean and
/// p50/p90/p99 (bins are summarized, not dumped). Keys are sorted, output
/// has no whitespace dependence on locale, and repeated calls on the same
/// snapshot are byte-identical.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Chrome trace-event format: a `{"traceEvents": [...]}` document of
/// "X"-phase slices, one per TraceEvent.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Combined export: the wall-clock spans above plus sim-clock tracepoints as
/// instant ("i") events. The two clocks never mix — spans keep pid 1 and
/// cat "fbdcsim" (their JSON is byte-identical to the spans-only overload),
/// tracepoints render on pid 2 under cat "fbdcsim.sim" with ts = sim
/// microseconds, in canonical source-id order.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                                          std::vector<TracePointDump> tracepoints);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace fbdcsim::telemetry
