// Observability opt-in: what the FBDCSIM_OBS env knob selects.
//
//   off      (default) no probes, no tracepoints — runs stay byte-identical
//            to pre-observability releases.
//   on       time-series probe + flight recorder active; results surface in
//            RackSimResult / BenchReport.
//   dump     like `on`, and every simulation dumps its flight recorder to
//            stderr when the run completes.
//   dump:N   like `dump` with a flight-recorder capacity of N records
//            (1..1048576).
//   flows    like `on`, plus the per-flow FlowLedger (telemetry/flow_ledger.h):
//            transfer lifecycle records with causal drop attribution, exported
//            as flows.jsonl / the BenchReport fct section.
//   flows:N  like `flows` with a ledger ring capacity of N records
//            (1..1048576).
//
// Malformed values follow the same contract as FBDCSIM_FAULTS /
// FBDCSIM_BENCH_SECONDS: one stderr diagnostic, then the documented default
// (off) — never a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fbdcsim/core/time.h"

namespace fbdcsim::telemetry {

struct ObsConfig {
  enum class Mode : std::uint8_t { kOff, kOn, kDump };

  Mode mode = Mode::kOff;
  /// Flight-recorder ring capacity (last N tracepoints retained).
  std::size_t flight_recorder = 256;
  /// Time-series sampling cadence (the paper's FBOSS counter period).
  core::Duration probe_period = core::Duration::micros(10);
  /// Bins retained per series before downsampling doubles the bin width.
  std::size_t series_capacity = 512;
  /// Sampling stride for gauges whose evaluation is O(live connections)
  /// (the transport sums): they fire every Nth probe tick. 100 keeps a Web
  /// rack's ~10^4-connection sums off the 10 us hot cadence (1 ms
  /// effective) without touching the O(1) switch/queue gauges.
  std::int64_t transport_stride = 100;
  /// Per-flow lifecycle ledger (FBDCSIM_OBS=flows). Off by default — runs
  /// without the opt-in stay byte-identical to pre-ledger releases.
  bool flows = false;
  /// FlowLedger ring capacity (last N closed transfers retained).
  std::size_t flow_capacity = 4096;

  [[nodiscard]] bool enabled() const { return mode != Mode::kOff; }
};

[[nodiscard]] const char* to_string(ObsConfig::Mode mode);

/// Parses an FBDCSIM_OBS value (`off|on|dump[:N]|flows[:N]`, lowercase). Returns
/// std::nullopt on malformed input and, when `error` is non-null, explains
/// why.
[[nodiscard]] std::optional<ObsConfig> parse_obs_spec(std::string_view spec,
                                                      std::string* error = nullptr);

/// FBDCSIM_OBS resolved against the contract above: unset -> off; malformed
/// -> off with one stderr diagnostic per call.
[[nodiscard]] ObsConfig obs_config_from_env();

}  // namespace fbdcsim::telemetry
