// Telemetry: the simulator's own observability layer.
//
// The paper's contribution is making Facebook's fabric observable (Fbflow,
// port mirroring, Scribe -> Scuba); this module does the same for the
// simulator itself. It provides
//
//   - MetricsRegistry (metrics.h): sharded, contention-free counters,
//     gauges, and histograms, merged on snapshot;
//   - TraceSpan / ScopedTimer (trace.h): hierarchical wall-clock timing
//     spans, exportable as Chrome trace events;
//   - exporters (export.h): human-readable summary tables, JSON snapshots,
//     and chrome://tracing / Perfetto-loadable trace files.
//
// Two switches control cost:
//
//   - compile time: the FBDCSIM_TELEMETRY CMake option (default ON). When
//     OFF, the FBDCSIM_T_* instrumentation macros below expand to nothing,
//     so instrumented code carries zero overhead. The telemetry classes
//     themselves always compile (their unit tests run in both modes).
//   - run time: Telemetry::set_enabled, initialized from the
//     FBDCSIM_TELEMETRY environment variable (0/1/on/off/true/false;
//     default on). When disabled, instrumentation sites reduce to one
//     relaxed atomic load and a predictable branch.
//
// Determinism contract (DESIGN.md §7): every metric is declared with a
// Kind. Kind::kSim metrics are derived purely from simulation state and are
// bit-identical across thread counts and schedules; Kind::kWall metrics
// (latencies, queue depths, utilization) depend on wall clock or scheduling
// and are segregated in every export, so the runtime/ bit-identity gates
// never compare them.
#pragma once

#include "fbdcsim/telemetry/metrics.h"
#include "fbdcsim/telemetry/trace.h"

// The CMake option FBDCSIM_TELEMETRY=OFF defines FBDCSIM_TELEMETRY_ENABLED=0
// globally; any other build (including non-CMake consumers) defaults to ON.
#ifndef FBDCSIM_TELEMETRY_ENABLED
#define FBDCSIM_TELEMETRY_ENABLED 1
#endif

#if FBDCSIM_TELEMETRY_ENABLED

/// Declares a function-local static handle bound to the global registry.
/// `kind` is the bare token Sim or Wall (see the determinism contract).
#define FBDCSIM_T_COUNTER(var, name, kind)                          \
  static ::fbdcsim::telemetry::Counter& var =                       \
      ::fbdcsim::telemetry::MetricsRegistry::global().counter(      \
          (name), ::fbdcsim::telemetry::Kind::k##kind)
#define FBDCSIM_T_GAUGE(var, name, kind)                            \
  static ::fbdcsim::telemetry::Gauge& var =                         \
      ::fbdcsim::telemetry::MetricsRegistry::global().gauge(        \
          (name), ::fbdcsim::telemetry::Kind::k##kind)
#define FBDCSIM_T_HISTOGRAM(var, name, kind)                        \
  static ::fbdcsim::telemetry::Histogram& var =                     \
      ::fbdcsim::telemetry::MetricsRegistry::global().histogram(    \
          (name), ::fbdcsim::telemetry::Kind::k##kind)

/// Mutations: no-ops (beyond one relaxed load) while telemetry is disabled.
#define FBDCSIM_T_ADD(var, n)                                            \
  do {                                                                   \
    if (::fbdcsim::telemetry::Telemetry::enabled()) (var).add(n);        \
  } while (0)
#define FBDCSIM_T_SET(var, v)                                            \
  do {                                                                   \
    if (::fbdcsim::telemetry::Telemetry::enabled()) (var).set(v);        \
  } while (0)
#define FBDCSIM_T_MAX(var, v)                                            \
  do {                                                                   \
    if (::fbdcsim::telemetry::Telemetry::enabled()) (var).update_max(v); \
  } while (0)
#define FBDCSIM_T_OBSERVE(var, v)                                        \
  do {                                                                   \
    if (::fbdcsim::telemetry::Telemetry::enabled()) (var).observe(v);    \
  } while (0)

/// Scoped timing spans recorded into the global Tracer.
#define FBDCSIM_T_SPAN(var, name) ::fbdcsim::telemetry::TraceSpan var { name }
#define FBDCSIM_T_SPAN2(var, name, detail) \
  ::fbdcsim::telemetry::TraceSpan var { (name), (detail) }

#else  // FBDCSIM_TELEMETRY_ENABLED

#define FBDCSIM_T_COUNTER(var, name, kind) \
  do {                                     \
  } while (0)
#define FBDCSIM_T_GAUGE(var, name, kind) \
  do {                                   \
  } while (0)
#define FBDCSIM_T_HISTOGRAM(var, name, kind) \
  do {                                       \
  } while (0)
#define FBDCSIM_T_ADD(var, n) \
  do {                        \
  } while (0)
#define FBDCSIM_T_SET(var, v) \
  do {                        \
  } while (0)
#define FBDCSIM_T_MAX(var, v) \
  do {                        \
  } while (0)
#define FBDCSIM_T_OBSERVE(var, v) \
  do {                            \
  } while (0)
#define FBDCSIM_T_SPAN(var, name) \
  do {                            \
  } while (0)
#define FBDCSIM_T_SPAN2(var, name, detail) \
  do {                                     \
  } while (0)

#endif  // FBDCSIM_TELEMETRY_ENABLED
