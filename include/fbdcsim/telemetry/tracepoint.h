// Structured sim-time tracepoints and the per-rack flight recorder.
//
// Where metrics count and series sample, tracepoints answer "what exactly
// happened around t": each is a typed record (packet drop, RTO fire,
// fast-retransmit entry/exit, fault epoch transition, handshake retry)
// stamped with sim time and an entity id. A TracePointLog is a bounded ring
// backed by a core::Arena — recording is a few stores, never a malloc — and
// doubles as the flight recorder: when full it overwrites the oldest record,
// so it always holds the *last N* events leading up to whatever went wrong.
//
// Exports are canonical: dumps are ordered by source id (monitored-host id)
// and records within a source keep sim-time order, so JSONL output is
// bit-identical across FBDCSIM_THREADS=1/2/8, engines, and merge orders.
// The Chrome-trace rendering emits sim-clock instant events on their own
// pid, never interleaved with the wall-clock spans of trace.h (the
// determinism contract made visible, DESIGN.md §11).
//
// Instrument through FBDCSIM_T_TRACEPOINT below: a null-log check plus the
// runtime telemetry switch when enabled, nothing at all when the build has
// -DFBDCSIM_TELEMETRY=OFF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fbdcsim/core/arena.h"
#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::telemetry {

enum class TracePointKind : std::uint8_t {
  kPacketDrop = 0,      // entity=egress port, a=frame bytes, b=port queued bytes
  kRtoFired,            // entity=flow tag, a=cwnd after collapse, b=backoff
  kFastRtxEnter,        // entity=flow tag, a=ssthresh, b=inflight at entry
  kFastRtxExit,         // entity=flow tag, a=cwnd after deflate, b=0
  kFaultEpoch,          // entity=port (or ~0 for switch), a=epoch code, b=scaled factor
  kHandshakeRetry,      // entity=flow tag, a=tries so far, b=connection state
};

/// Stable lowercase identifier ("packet_drop", "rto_fired", ...).
[[nodiscard]] const char* to_string(TracePointKind kind);

/// kFaultEpoch `a` codes.
inline constexpr std::int64_t kFaultEpochBufferShrunk = 0;
inline constexpr std::int64_t kFaultEpochUplinkFailed = 1;
inline constexpr std::int64_t kFaultEpochUplinkDegraded = 2;

struct TracePointRecord {
  std::int64_t t_ns{0};
  std::uint64_t entity{0};
  std::int64_t a{0};
  std::int64_t b{0};
  TracePointKind kind{TracePointKind::kPacketDrop};
};

/// A log's value snapshot: the retained ring oldest-first, plus the total
/// ever recorded (total > records.size() means the ring wrapped).
struct TracePointDump {
  std::uint64_t source_id{0};
  std::int64_t total{0};
  std::vector<TracePointRecord> records;
};

/// Bounded, arena-backed tracepoint ring. One log per simulation (the rack's
/// flight recorder); record() is called from that simulation's thread only.
class TracePointLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit TracePointLog(std::uint64_t source_id, std::size_t capacity = kDefaultCapacity);

  void record(std::int64_t t_ns, TracePointKind kind, std::uint64_t entity,
              std::int64_t a = 0, std::int64_t b = 0) noexcept;

  [[nodiscard]] std::uint64_t source_id() const { return source_id_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records ever taken, including ones the ring has since overwritten.
  [[nodiscard]] std::int64_t total_recorded() const { return total_; }

  [[nodiscard]] TracePointDump snapshot() const;

  /// Human-greppable dump (one line per retained record) — the flight
  /// recorder's crash output.
  void dump(std::FILE* out) const;

 private:
  core::Arena arena_;
  TracePointRecord* ring_;
  std::size_t capacity_;
  std::size_t next_{0};
  std::int64_t total_{0};
  std::uint64_t source_id_;
};

/// Process-wide registry of live flight recorders, so a crash handler (or
/// FBDCSIM_OBS=dump) can dump every rack's last-N events without plumbing.
/// add/remove are mutex-guarded (captures run on pool threads); dump_all
/// orders by source id. Reading a log that is still recording is only done
/// on the way down — the terminate path — where a torn ring beats silence.
class FlightRecorders {
 public:
  static void add(const TracePointLog* log);
  static void remove(const TracePointLog* log);
  /// Dumps every registered recorder, ordered by source id.
  static void dump_all(std::FILE* out);
  /// Installs (once per process) a std::terminate handler that dumps all
  /// registered recorders to stderr before chaining to the previous handler.
  static void arm_crash_dump();
};

/// One JSON object per line:
/// `{"source":...,"t_ns":...,"kind":"...","entity":...,"a":...,"b":...}`.
/// Dumps are ordered by source id (stable for ties), records kept in ring
/// order — canonical and bit-identical for equal inputs.
[[nodiscard]] std::string tracepoints_to_jsonl(std::vector<TracePointDump> dumps);

}  // namespace fbdcsim::telemetry

#if FBDCSIM_TELEMETRY_ENABLED

/// Records a tracepoint when `log` (a TracePointLog*) is wired up and the
/// runtime telemetry switch is on. `kind` is the bare enumerator token
/// (PacketDrop, RtoFired, ...). Compiles away under -DFBDCSIM_TELEMETRY=OFF.
#define FBDCSIM_T_TRACEPOINT(log, t_ns, kind, entity, a, b)                    \
  do {                                                                         \
    if ((log) != nullptr && ::fbdcsim::telemetry::Telemetry::enabled()) {      \
      (log)->record((t_ns), ::fbdcsim::telemetry::TracePointKind::k##kind,     \
                    (entity), (a), (b));                                       \
    }                                                                          \
  } while (0)

#else  // FBDCSIM_TELEMETRY_ENABLED

#define FBDCSIM_T_TRACEPOINT(log, t_ns, kind, entity, a, b) \
  do {                                                      \
  } while (0)

#endif  // FBDCSIM_TELEMETRY_ENABLED
