// FlowLedger: per-flow causal lifecycle records (DESIGN.md §14).
//
// Where TimeSeriesProbe answers "when" and TracePointLog answers "what
// event", the ledger stitches events into per-flow stories: one record per
// *directed transfer* (a demand burst on one half-stream of a TcpConnection,
// from first queued byte to the ACK that drains it) carrying
//
//   - birth context: generation-tagged flow tag, 5-tuple, monitored-host
//     role, peer role, locality class, topology-derived base RTT and
//     bottleneck rate;
//   - handshake milestones: SYN (re)send count and established time,
//     stamped from the owning connection (-1 when the connection was pooled
//     and never handshook inside the run);
//   - loss events with causal attribution: every switch drop (switch id +
//     egress port + sim time, plus the fault-epoch id when a faults/
//     decision shrank the buffer), every beyond-RSW path-loss draw, and —
//     from the scripted-loss test harness — injected drops. Each drop gets
//     a ledger-wide monotone attribution id that never changes, even after
//     ring eviction discards the record that owned it;
//   - retransmissions, each linked back to its cause: a retransmitted
//     segment claims the earliest unclaimed drop overlapping its byte
//     range; go-back-N resends after a timeout inherit the drop that
//     caused the RTO; anything else (e.g. an ACK lost on the return path)
//     stays unattributed with cause_id = -1;
//   - recovery-law episodes: fast-recovery / SACK-episode enter+exit
//     intervals (never overlapping per record — entering twice without an
//     exit is impossible by construction), RTO fires and ECN-driven cwnd
//     reductions as point episodes;
//   - completion: FCT (first demand to full ACK), transfer bytes,
//     retransmitted bytes, and the ideal FCT (base RTT + bytes at the
//     bottleneck rate) consumers divide by for slowdown.
//
// Determinism contract: the ledger is fed exclusively from the owning
// simulation's thread, stores only sim-derived integers, and keeps records
// in a bounded arena-backed ring (completion order, oldest evicted first) —
// so flows_to_jsonl output is bit-identical across engines and
// FBDCSIM_THREADS settings, and empty (byte-identical-off) unless
// FBDCSIM_OBS=flows opted in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fbdcsim/core/arena.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/packet.h"

namespace fbdcsim::telemetry {

/// What removed a data segment from the wire.
enum class FlowDropCause : std::uint8_t {
  kSwitchBuffer = 0,  // DT admission rejected it at the shared-buffer switch
  kPathLoss,          // the fault plan's beyond-RSW loss draw ate it
  kScripted,          // a test harness (tests/support/scripted_loss.h) dropped it
};

[[nodiscard]] const char* to_string(FlowDropCause cause);

/// kFaultEpoch code for drop records whose cause was a faults/ path-loss
/// draw (extends the tracepoint.h kFaultEpoch* codes, which cover the t=0
/// epoch decisions).
inline constexpr std::int64_t kFaultEpochPathLoss = 3;

enum class FlowRtxKind : std::uint8_t {
  kDupack = 0,  // sent while the half-stream was in fast recovery
  kRto,         // go-back-N stream after a timeout
};

[[nodiscard]] const char* to_string(FlowRtxKind kind);

enum class FlowEpisodeKind : std::uint8_t {
  kFastRecovery = 0,  // NewReno dupack-triggered episode (interval)
  kSackRecovery,      // RFC 6675 scoreboard episode (interval)
  kRto,               // timeout fired (point: end == start, detail = backoff)
  kEcnReduction,      // DCTCP alpha-scaled cut (point, detail = cwnd after)
};

[[nodiscard]] const char* to_string(FlowEpisodeKind kind);

/// One observed drop. `id` is ledger-wide, monotone from 1, and stable for
/// the life of the ledger — retransmissions reference it via cause_id.
struct FlowDropEvent {
  std::int64_t id{0};
  std::int64_t t_ns{0};
  std::int64_t seq{0};
  std::int64_t len{0};
  FlowDropCause cause{FlowDropCause::kSwitchBuffer};
  bool claimed{false};           // some retransmission linked back to it
  std::int32_t port{-1};         // switch egress port; -1 for path loss
  std::uint64_t switch_id{0};    // meaningful for kSwitchBuffer only
  std::int64_t fault_epoch{-1};  // kFaultEpoch* code when faults/ caused it
};

struct FlowRtxEvent {
  std::int64_t t_ns{0};
  std::int64_t seq{0};
  std::int64_t len{0};
  std::int64_t cause_id{-1};  // FlowDropEvent::id, or -1 = unattributed
  FlowRtxKind kind{FlowRtxKind::kDupack};
};

struct FlowEpisode {
  std::int64_t start_ns{0};
  std::int64_t end_ns{-1};  // -1 = still open when the record closed
  std::int64_t detail{0};   // kRto: backoff step; kEcnReduction: cwnd after
  FlowEpisodeKind kind{FlowEpisodeKind::kFastRecovery};
};

inline constexpr std::size_t kFlowMaxDrops = 8;
inline constexpr std::size_t kFlowMaxRtx = 16;
inline constexpr std::size_t kFlowMaxEpisodes = 8;

/// One directed transfer. Retained event arrays are bounded; the *_total
/// counters keep counting past the bounds (drops_total > drop_count means
/// the array overflowed and later drops kept only their count).
struct FlowLedgerRecord {
  std::int64_t id{0};  // ledger-wide record id, monotone with transfer start
  std::uint32_t flow_tag{0};
  std::uint8_t dir{0};  // 0 = out (monitored host sends), 1 = in
  core::HostRole role{core::HostRole::kWeb};
  core::HostRole peer_role{core::HostRole::kWeb};
  core::Locality locality{core::Locality::kIntraRack};
  core::FiveTuple tuple{};  // out-direction orientation (self -> peer)

  std::int64_t conn_born_ns{-1};
  std::int64_t syn_sends{0};
  std::int64_t established_ns{-1};  // -1: pooled (handshake predates the run)

  std::int64_t start_ns{-1};      // first demand of this transfer
  std::int64_t completed_ns{-1};  // all bytes acked; -1 = never completed
  std::int64_t bytes{0};          // demand bytes the transfer carried
  std::int64_t rtx_bytes{0};
  std::int64_t rtt_ns{0};             // this direction's feedback-loop RTT
  std::int64_t bottleneck_bps{0};     // bottleneck rate, bytes per second
  std::int64_t ideal_ns{0};           // rtt_ns + bytes at bottleneck_bps

  std::int64_t drops_total{0};
  std::int64_t rtx_total{0};
  std::int64_t rto_count{0};
  std::int64_t ecn_reductions{0};

  std::size_t drop_count{0};
  std::size_t rtx_count{0};
  std::size_t episode_count{0};
  FlowDropEvent drops[kFlowMaxDrops]{};
  FlowRtxEvent rtxs[kFlowMaxRtx]{};
  FlowEpisode episodes[kFlowMaxEpisodes]{};

  [[nodiscard]] bool completed() const { return completed_ns >= 0; }
  [[nodiscard]] std::int64_t fct_ns() const {
    return completed() ? completed_ns - start_ns : -1;
  }
  /// FCT / ideal FCT; 0 for incomplete records.
  [[nodiscard]] double slowdown() const {
    if (!completed() || ideal_ns <= 0) return 0.0;
    return static_cast<double>(fct_ns()) / static_cast<double>(ideal_ns);
  }
};

/// A ledger's value snapshot: the retained ring oldest-first plus the
/// counts eviction discarded.
struct FlowLedgerDump {
  std::uint64_t source_id{0};
  std::int64_t total{0};        // records ever closed (total > records.size()
                                // means the ring evicted)
  std::int64_t stray_events{0};  // drop/rtx/episode events with no open transfer
  std::vector<FlowLedgerRecord> records;
};

/// `rtt_ns + bytes / bottleneck_bytes_per_sec`, exact integer arithmetic.
[[nodiscard]] std::int64_t ideal_fct_ns(std::int64_t bytes, std::int64_t rtt_ns,
                                        std::int64_t bottleneck_bytes_per_sec);

/// Bounded, arena-backed transfer ledger. One per simulation; every hook is
/// called from that simulation's thread only. Unknown flow tags are ignored
/// (stale packets from recycled connections, or a ledger attached mid-run).
class FlowLedger {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlowLedger(std::uint64_t source_id, std::size_t capacity = kDefaultCapacity);

  FlowLedger(const FlowLedger&) = delete;
  FlowLedger& operator=(const FlowLedger&) = delete;

  // ---- lifecycle hooks (TransportMux instrumentation points) ----
  void on_birth(std::uint32_t tag, std::int64_t t_ns, const core::FiveTuple& tuple,
                core::HostRole role, core::HostRole peer_role, core::Locality locality,
                std::int64_t rtt_out_ns, std::int64_t rtt_in_ns,
                std::int64_t bottleneck_bytes_per_sec);
  void on_syn(std::uint32_t tag, std::int64_t t_ns);
  void on_established(std::uint32_t tag, std::int64_t t_ns);
  void on_demand(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t bytes);
  /// Cumulative-ACK advance: `snd_una` is the half-stream's new lower edge.
  /// Closes the open transfer when it catches the demanded total.
  void on_acked(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t snd_una);
  void on_drop(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t seq,
               std::int64_t len, FlowDropCause cause, std::uint64_t switch_id,
               std::int32_t port, std::int64_t fault_epoch);
  void on_retransmit(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t seq,
                     std::int64_t len, FlowRtxKind kind);
  void on_recovery_enter(std::uint32_t tag, std::int64_t t_ns, int dir,
                         FlowEpisodeKind kind);
  void on_recovery_exit(std::uint32_t tag, std::int64_t t_ns, int dir);
  void on_rto(std::uint32_t tag, std::int64_t t_ns, int dir, std::int64_t backoff);
  void on_ecn_reduction(std::uint32_t tag, std::int64_t t_ns, int dir,
                        std::int64_t cwnd_after);
  /// Connection slot recycled (close, handshake failure): open transfers
  /// close as incomplete and the tag is forgotten.
  void on_release(std::uint32_t tag, std::int64_t t_ns);

  /// End of capture: flushes every still-open transfer into the ring as
  /// incomplete, in connection-creation order (deterministic).
  void finalize(std::int64_t t_ns);

  [[nodiscard]] std::uint64_t source_id() const { return source_id_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t total_closed() const { return total_; }
  [[nodiscard]] std::int64_t live_transfers() const { return open_transfers_; }
  [[nodiscard]] std::int64_t stray_events() const { return stray_events_; }

  [[nodiscard]] FlowLedgerDump snapshot() const;

 private:
  struct HalfLive {
    FlowLedgerRecord* open{nullptr};  // pooled; null when drained
    std::int64_t demanded{0};         // cumulative stream demand (absolute)
    std::int64_t acked{0};            // cumulative ACK edge (absolute)
    std::int64_t rto_cause_id{-1};    // drop the last RTO was pinned on
    bool in_recovery{false};
  };
  struct ConnLive {
    std::int64_t serial{0};  // creation order, the finalize() sort key
    core::FiveTuple tuple{};
    core::HostRole role{core::HostRole::kWeb};
    core::HostRole peer_role{core::HostRole::kWeb};
    core::Locality locality{core::Locality::kIntraRack};
    std::int64_t born_ns{0};
    std::int64_t syn_sends{0};
    std::int64_t established_ns{-1};
    std::int64_t rtt_ns[2]{0, 0};
    std::int64_t bottleneck_bps{0};
    HalfLive half[2];
  };

  [[nodiscard]] ConnLive* live(std::uint32_t tag);
  FlowLedgerRecord& open_transfer(ConnLive& conn, std::uint32_t tag, int dir,
                                  std::int64_t t_ns);
  void close_transfer(ConnLive& conn, int dir, std::int64_t completed_ns);
  void push_to_ring(const FlowLedgerRecord& record);

  core::Arena arena_;
  core::Pool<FlowLedgerRecord> pool_{arena_};
  FlowLedgerRecord* ring_;
  std::size_t capacity_;
  std::size_t next_{0};
  std::int64_t total_{0};
  std::uint64_t source_id_;
  std::unordered_map<std::uint32_t, ConnLive> live_;
  std::int64_t next_record_id_{0};
  std::int64_t next_drop_id_{0};
  std::int64_t next_conn_serial_{0};
  std::int64_t open_transfers_{0};
  std::int64_t stray_events_{0};
};

/// Canonical JSONL: one JSON object per record, dumps ordered by source id
/// (stable for ties), records kept in ring (completion) order. Keys are
/// fixed-order, values are integers and fixed strings — bit-identical for
/// equal inputs. Schema (DESIGN.md §14):
///   {"source":N,"id":N,"tag":N,"dir":"out|in","role":S,"peer_role":S,
///    "locality":S,"tuple":S,"born_ns":N,"syn_sends":N,"established_ns":N,
///    "start_ns":N,"completed_ns":N,"bytes":N,"rtx_bytes":N,"rtt_ns":N,
///    "bottleneck_bps":N,"ideal_ns":N,"drops_total":N,"rtx_total":N,
///    "rto_count":N,"ecn_reductions":N,
///    "drops":[{"id":N,"t_ns":N,"seq":N,"len":N,"cause":S,"switch":N,
///              "port":N,"fault_epoch":N,"claimed":0|1}],
///    "rtx":[{"t_ns":N,"seq":N,"len":N,"kind":"dupack|rto","cause_id":N}],
///    "episodes":[{"kind":S,"start_ns":N,"end_ns":N,"detail":N}]}
[[nodiscard]] std::string flows_to_jsonl(std::vector<FlowLedgerDump> dumps);

/// Parses flows_to_jsonl output back into per-source dumps (total =
/// records retained, stray_events = 0 — neither is serialized). Returns
/// std::nullopt on malformed input and, when `error` is non-null, explains
/// why. flows_to_jsonl(*flows_from_jsonl(s)) == s for canonical s.
[[nodiscard]] std::optional<std::vector<FlowLedgerDump>> flows_from_jsonl(
    std::string_view jsonl, std::string* error = nullptr);

}  // namespace fbdcsim::telemetry
