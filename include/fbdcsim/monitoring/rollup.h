// Hive-style long-term rollups (Section 3.3.1: Fbflow samples are "stored
// into Hive tables for long-term analysis").
//
// Scuba answers real-time queries over raw tagged samples; long-horizon
// questions — is the traffic matrix stable day-over-day (§4.3)? — work on
// compact rollups instead. HiveRollup aggregates samples into per-day
// cluster-to-cluster byte matrices and per-day locality vectors in O(days x
// clusters^2) memory, independent of sample volume.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fbdcsim/monitoring/fbflow.h"

namespace fbdcsim::monitoring {

class HiveRollup {
 public:
  HiveRollup(std::size_t num_clusters, std::int64_t sampling_rate)
      : num_clusters_{num_clusters}, sampling_rate_{sampling_rate} {}

  void add(const TaggedSample& sample);

  [[nodiscard]] std::int64_t num_days() const {
    return days_.empty() ? 0 : days_.rbegin()->first + 1;
  }

  /// Estimated cluster-to-cluster byte matrix for one day (flattened
  /// row-major, clusters x clusters); zeros if the day has no samples.
  [[nodiscard]] std::vector<double> cluster_matrix(std::int64_t day) const;

  /// Estimated bytes by locality for one day.
  [[nodiscard]] std::array<double, core::kNumLocalities> locality_vector(
      std::int64_t day) const;

  /// Cosine similarity between two days' cluster matrices — the §4.3
  /// day-over-day stability metric (1.0 = identical direction of demand).
  [[nodiscard]] double day_similarity(std::int64_t day_a, std::int64_t day_b) const;

 private:
  struct DayAgg {
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> cluster_bytes;
    std::array<double, core::kNumLocalities> locality_bytes{};
  };

  std::size_t num_clusters_;
  std::int64_t sampling_rate_;
  std::map<std::int64_t, DayAgg> days_;
};

/// Cosine similarity of two equally-sized flattened matrices.
[[nodiscard]] double cosine_similarity(const std::vector<double>& a,
                                       const std::vector<double>& b);

}  // namespace fbdcsim::monitoring
