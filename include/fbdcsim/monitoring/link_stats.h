// Per-link byte accounting with per-minute resolution — the SNMP-counter
// view used for the utilization analysis of Section 4.1 and the link
// utilization / drop panels of Figure 15.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"
#include "fbdcsim/topology/network.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::monitoring {

/// Accumulates bytes per (link, minute). Memory is O(links x minutes).
class LinkStats {
 public:
  LinkStats(const topology::Network& network, core::Duration horizon);

  /// Charges `bytes` to `link` spread uniformly over [start, start+dur).
  /// Durations that span minute boundaries are split proportionally.
  void add(core::LinkId link, core::TimePoint start, core::Duration dur, core::DataSize bytes);

  /// Charges a whole routed path.
  void add_path(std::span<const core::LinkId> path, core::TimePoint start, core::Duration dur,
                core::DataSize bytes);

  /// Adds another accumulator's per-(link, minute) bytes into this one.
  /// Both must cover the same network and horizon. Used to combine
  /// per-shard accumulators after a parallel fleet run.
  void merge(const LinkStats& other);

  /// Utilization of a link in a given minute, as a fraction of capacity.
  [[nodiscard]] double utilization(core::LinkId link, std::int64_t minute) const;

  /// Utilization against fault-adjusted capacity: the plan's per-(link,
  /// minute) capacity factor scales the denominator, so a degraded link is
  /// proportionally more utilized by the same bytes. A failed link (factor
  /// zero) reports 1.0 if anything was charged to it that minute — i.e.
  /// saturated — and 0.0 otherwise. A null/disabled plan reproduces
  /// utilization() exactly.
  [[nodiscard]] double faulted_utilization(core::LinkId link, std::int64_t minute,
                                           const faults::FaultPlan* plan) const;

  /// Mean utilization of a link over the whole horizon.
  [[nodiscard]] double mean_utilization(core::LinkId link) const;

  /// All per-minute utilization samples for links whose *source* endpoint
  /// matches a predicate — e.g. host uplinks, RSW->CSW, CSW->FC.
  template <typename Pred>
  [[nodiscard]] std::vector<double> utilizations_where(Pred pred) const {
    std::vector<double> out;
    for (const topology::Link& link : network_->links()) {
      if (!pred(link)) continue;
      for (std::int64_t m = 0; m < minutes_; ++m) {
        out.push_back(utilization(link.id, m));
      }
    }
    return out;
  }

  [[nodiscard]] std::int64_t minutes() const { return minutes_; }
  [[nodiscard]] const topology::Network& network() const { return *network_; }

 private:
  const topology::Network* network_;
  std::int64_t minutes_;
  std::vector<std::vector<double>> bytes_;  // [link][minute]
};

}  // namespace fbdcsim::monitoring
