// Fbflow: the fleet-wide sampled packet-header monitoring pipeline
// (Section 3.3.1, Figure 3).
//
// Production Fbflow inserts an nflog target into every machine's iptables,
// samples packet headers at 1:30,000, streams parsed headers through Scribe
// to taggers that annotate rack/cluster/etc., and lands annotated records
// in Scuba (real-time, per-minute granularity) and Hive. This module
// reproduces that pipeline in-process:
//
//   PacketSampler / AnalyticSampler  ->  ScribeBus  ->  Tagger  ->  ScubaTable
//
// PacketSampler does per-packet counting-based sampling (packet-level rack
// simulations); AnalyticSampler applies the statistically equivalent
// Poisson thinning to FlowRecords (fleet-level flow simulations), which is
// what makes 24-hour fleet runs tractable — the same reason the real system
// samples.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/rng.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::monitoring {

/// Default production sampling rate (1:30,000).
inline constexpr std::int64_t kDefaultSamplingRate = 30'000;

/// A sampled header as emitted by a host agent: parsed header fields plus
/// the reporting machine and capture time (pre-annotation).
struct SampledPacket {
  core::TimePoint captured_at;
  core::FiveTuple tuple;
  std::int64_t frame_bytes{0};
  core::HostId reporter;  // machine whose agent sampled the packet
};

/// Counting sampler: selects every Nth packet with a per-host random phase,
/// the standard unbiased implementation of 1:N header sampling.
class PacketSampler {
 public:
  PacketSampler(std::int64_t rate, core::RngStream& rng);

  /// True if this packet is selected.
  [[nodiscard]] bool sample();

  [[nodiscard]] std::int64_t rate() const { return rate_; }

 private:
  std::int64_t rate_;
  std::int64_t countdown_;
};

/// Poisson thinning of a whole flow: statistically equivalent to running
/// PacketSampler over the flow's packets. Emits one SampledPacket per
/// selected packet, with timestamps uniform over the flow's lifetime.
class AnalyticSampler {
 public:
  AnalyticSampler(std::int64_t rate, core::RngStream rng) : rate_{rate}, rng_{rng} {}

  using Emit = std::function<void(const SampledPacket&)>;
  void sample_flow(const core::FlowRecord& flow, const Emit& emit);

  [[nodiscard]] std::int64_t rate() const { return rate_; }

 private:
  std::int64_t rate_;
  core::RngStream rng_;
};

/// A Scribe-like in-process log bus: agents publish, taggers subscribe.
class ScribeBus {
 public:
  using Subscriber = std::function<void(const SampledPacket&)>;

  void subscribe(Subscriber fn) { subscribers_.push_back(std::move(fn)); }
  void publish(const SampledPacket& sample) {
    ++published_;
    for (const auto& fn : subscribers_) fn(sample);
  }

  [[nodiscard]] std::int64_t published() const { return published_; }

  /// Folds another bus's publish counter into this one (pipeline merge).
  void absorb_counters(const ScribeBus& other) { published_ += other.published_; }

 private:
  std::vector<Subscriber> subscribers_;
  std::int64_t published_{0};
};

/// A fully annotated sample, as the taggers hand to Scuba/Hive.
struct TaggedSample {
  SampledPacket sample;
  core::HostId src_host;  // invalid if the address is unknown to the tagger
  core::HostId dst_host;
  core::HostRole src_role{core::HostRole::kService};
  core::HostRole dst_role{core::HostRole::kService};
  core::RackId src_rack;
  core::RackId dst_rack;
  core::ClusterId src_cluster;
  core::ClusterId dst_cluster;
  core::DatacenterId src_dc;
  core::DatacenterId dst_dc;
  core::Locality locality{core::Locality::kIntraRack};
  std::int64_t minute{0};  // capture minute (Scuba aggregation granularity)
  /// Graceful degradation: the tagger's topology lookup failed (injected
  /// fault), so the row landed without annotations. Partial rows are
  /// counted but excluded from every topology-keyed aggregate.
  bool partial{false};
};

/// Annotates samples with topology metadata by address lookup, exactly the
/// role of Fbflow's taggers.
class Tagger {
 public:
  explicit Tagger(const topology::Fleet& fleet) : fleet_{&fleet} {}

  /// Returns false if neither endpoint resolves to a fleet host.
  [[nodiscard]] bool tag(const SampledPacket& sample, TaggedSample& out) const;

 private:
  const topology::Fleet* fleet_;
};

/// An in-memory, append-only analytic table over tagged samples with the
/// aggregation queries the paper's analyses run in Scuba.
class ScubaTable {
 public:
  void add(const TaggedSample& row) { rows_.push_back(row); }

  /// Appends another table's rows (in their landed order) — the merge step
  /// when per-shard pipelines are combined after a parallel fleet run.
  void merge(const ScubaTable& other) {
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  }

  [[nodiscard]] std::span<const TaggedSample> rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Estimated total bytes by locality (scaled by the sampling rate),
  /// optionally restricted to sources in one cluster type.
  struct LocalityBytes {
    double bytes[core::kNumLocalities]{};
    [[nodiscard]] double total() const;
    /// Percentage share of each locality bucket.
    [[nodiscard]] std::array<double, core::kNumLocalities> percentages() const;
  };
  [[nodiscard]] LocalityBytes locality_bytes(std::int64_t sampling_rate) const;
  [[nodiscard]] LocalityBytes locality_bytes_for_cluster_type(
      const topology::Fleet& fleet, topology::ClusterType type,
      std::int64_t sampling_rate) const;

  /// Estimated bytes grouped by source cluster type (Table 3 bottom row).
  [[nodiscard]] std::vector<std::pair<topology::ClusterType, double>> bytes_by_cluster_type(
      const topology::Fleet& fleet, std::int64_t sampling_rate) const;

  /// Rack-to-rack estimated byte matrix restricted to one cluster
  /// (Figure 5a/5b). Indexing is by position of the rack in the cluster.
  [[nodiscard]] std::vector<std::vector<double>> rack_matrix(const topology::Fleet& fleet,
                                                             core::ClusterId cluster,
                                                             std::int64_t sampling_rate) const;

  /// Cluster-to-cluster estimated byte matrix within one datacenter
  /// (Figure 5c).
  [[nodiscard]] std::vector<std::vector<double>> cluster_matrix(
      const topology::Fleet& fleet, core::DatacenterId dc, std::int64_t sampling_rate) const;

  /// Fleet-wide role-to-role estimated byte matrix (8x8, indexed by
  /// HostRole) — the fleet generalization of Table 2.
  [[nodiscard]] std::vector<std::vector<double>> role_matrix(
      std::int64_t sampling_rate) const;

  /// Estimated outbound bytes of one source host grouped by destination
  /// role (Table 2).
  [[nodiscard]] std::vector<std::pair<core::HostRole, double>> outbound_by_dest_role(
      core::HostId src, std::int64_t sampling_rate) const;

 private:
  std::vector<TaggedSample> rows_;
};

/// Convenience: a fully wired agent->scribe->tagger->scuba pipeline.
///
/// Flow-mode sampling draws from a per-reporter-host stream forked from the
/// pipeline's root rng (`fork("analytic-host", host)`), mirroring the
/// production system where every machine's agent samples independently.
/// Consequently the samples drawn for one host's flows do not depend on how
/// flows from *different* hosts interleave — the determinism contract that
/// lets runtime::ShardedFleetRunner feed per-shard pipelines in parallel
/// and merge them into the same result as a serial run.
class FbflowPipeline {
 public:
  /// `faults`, when non-null and enabled, injects the pipeline's real-world
  /// failure modes (must outlive the pipeline): Scribe publish attempts can
  /// fail and are retried with exponential backoff (exhausted retries lose
  /// the sample — scribe_dropped), delivered samples can be delayed (which
  /// shifts the Scuba minute they land in), and tagger lookups can fail
  /// (the row lands partial). Every decision is keyed on the sample's
  /// content (FaultPlan::sample_key), so faulted shard pipelines merge to
  /// the same table as a faulted serial pipeline.
  FbflowPipeline(const topology::Fleet& fleet, std::int64_t sampling_rate,
                 core::RngStream rng, const faults::FaultPlan* faults = nullptr);

  /// Fleet mode: offer a completed flow for analytic sampling. The flow's
  /// src_host is the reporting agent.
  void offer_flow(const core::FlowRecord& flow);

  /// Packet mode: offer one packet observed at `reporter`.
  void offer_packet(core::HostId reporter, const core::PacketHeader& header);

  /// Absorbs another pipeline's landed rows and counters, appending its
  /// Scuba rows after this pipeline's. Both pipelines must share the
  /// sampling rate (and, for meaningful results, the root rng seed and
  /// fleet). Merging shard pipelines in canonical shard order reproduces a
  /// serial pipeline's table row-for-row.
  void merge(const FbflowPipeline& other);

  [[nodiscard]] const ScubaTable& scuba() const { return scuba_; }
  [[nodiscard]] const ScribeBus& scribe() const { return scribe_; }
  [[nodiscard]] std::int64_t sampling_rate() const { return sampling_rate_; }
  [[nodiscard]] std::int64_t tag_failures() const { return tag_failures_; }

  // Fault-injection loss accounting (all zero when fault-free).
  /// Samples lost after exhausting Scribe retries.
  [[nodiscard]] std::int64_t scribe_dropped() const { return scribe_dropped_; }
  /// Total failed publish attempts that were retried.
  [[nodiscard]] std::int64_t scribe_retries() const { return scribe_retries_; }
  /// Total exponential-backoff delay accumulated by retried publishes.
  [[nodiscard]] core::Duration scribe_backoff_total() const { return scribe_backoff_total_; }
  /// Delivered samples whose capture time was shifted by Scribe delay.
  [[nodiscard]] std::int64_t scribe_delayed() const { return scribe_delayed_; }
  /// Injected tagger lookup failures (each lands one partial row).
  [[nodiscard]] std::int64_t tag_failures_injected() const { return tag_failures_injected_; }
  /// Partial (untagged) rows landed in Scuba.
  [[nodiscard]] std::int64_t partial_rows() const { return partial_rows_; }

 private:
  [[nodiscard]] AnalyticSampler& sampler_for(core::HostId reporter);
  /// Scribe ingress under the fault plan: retry/drop/delay, then publish.
  void publish(const SampledPacket& sample);

  std::int64_t sampling_rate_;
  const faults::FaultPlan* faults_;
  bool faulted_{false};
  core::RngStream analytic_root_;
  std::unordered_map<std::uint64_t, AnalyticSampler> analytic_;  // by reporter host
  core::RngStream packet_rng_;  // must precede packet_sampler_
  PacketSampler packet_sampler_;
  ScribeBus scribe_;
  Tagger tagger_;
  ScubaTable scuba_;
  std::int64_t tag_failures_{0};
  std::int64_t scribe_dropped_{0};
  std::int64_t scribe_retries_{0};
  core::Duration scribe_backoff_total_ = core::Duration::nanos(0);
  std::int64_t scribe_delayed_{0};
  std::int64_t tag_failures_injected_{0};
  std::int64_t partial_rows_{0};
};

}  // namespace fbdcsim::monitoring
