// Port-mirroring capture path (Section 3.3.2).
//
// The paper mirrors one server's (or, for lightly loaded Web racks, a whole
// rack's) bidirectional traffic at the RSW into a collection host whose
// free RAM is pinned as a packet buffer — so capture length is bounded by
// memory, not by tcpdump throughput. CaptureBuffer models exactly that
// contract: header-only records, a hard memory bound, and loss accounting
// (the paper's RSWs mirror without loss; we surface overflow explicitly so
// experiments can assert it never happened).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fbdcsim/core/packet.h"

namespace fbdcsim::monitoring {

class CaptureBuffer {
 public:
  /// `memory_limit` bounds the trace: each header record costs
  /// kRecordBytes of collection-host memory (pinned RAM).
  explicit CaptureBuffer(std::int64_t memory_limit_bytes = 8LL * 1024 * 1024 * 1024);

  /// Size of one stored header record on the collection host.
  static constexpr std::int64_t kRecordBytes = 64;

  /// Appends a header; returns false (and counts the loss) if full.
  bool record(const core::PacketHeader& header);

  /// Counts a loss injected upstream of the buffer (a mirror frame dropped
  /// while competing with live traffic under a fault plan). Folded into
  /// dropped() alongside overflow losses, and tracked separately so
  /// experiments can tell the two loss modes apart.
  void drop_injected();

  [[nodiscard]] std::span<const core::PacketHeader> packets() const { return packets_; }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] std::int64_t injected_dropped() const { return injected_dropped_; }
  [[nodiscard]] std::int64_t capacity_records() const { return capacity_records_; }

  /// Hands the trace off for analysis (spooling to remote storage in the
  /// paper's pipeline) and clears the buffer.
  [[nodiscard]] std::vector<core::PacketHeader> spool();

 private:
  std::int64_t capacity_records_;
  std::int64_t dropped_{0};
  std::int64_t injected_dropped_{0};
  std::vector<core::PacketHeader> packets_;
};

/// The RSW-side mirroring rule: which hosts' ports are mirrored. The rack
/// simulation consults this for every packet crossing the switch and copies
/// matching headers into the capture buffer.
class PortMirror {
 public:
  PortMirror(std::vector<core::Ipv4Addr> monitored, CaptureBuffer& buffer)
      : monitored_{std::move(monitored)}, buffer_{&buffer} {}

  /// Mirrors the header if either endpoint is a monitored address.
  void observe(const core::PacketHeader& header);

  /// Whether observe() would mirror this header (either endpoint monitored).
  [[nodiscard]] bool matches(const core::PacketHeader& header) const;

  [[nodiscard]] std::span<const core::Ipv4Addr> monitored() const { return monitored_; }

 private:
  std::vector<core::Ipv4Addr> monitored_;
  CaptureBuffer* buffer_;
};

}  // namespace fbdcsim::monitoring
