// Packet-header trace serialization.
//
// The paper's collection hosts spool captured headers to remote storage for
// offline analysis (§3.3.2). This module provides that boundary: a compact
// binary format ("FBTR") for captured traces, so expensive captures can be
// taken once and analyzed many times, plus a CSV exporter for ad-hoc
// tooling. The format is versioned and checksummed; readers reject
// truncated or corrupted files instead of silently mis-parsing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "fbdcsim/core/packet.h"

namespace fbdcsim::monitoring {

/// Result of a read attempt.
struct TraceReadResult {
  bool ok{false};
  std::string error;            // set when !ok
  std::vector<core::PacketHeader> trace;
};

/// Writes a trace in FBTR binary format. Returns false on I/O failure.
bool write_trace(std::ostream& out, std::span<const core::PacketHeader> trace);
bool write_trace_file(const std::string& path, std::span<const core::PacketHeader> trace);

/// Reads an FBTR trace, validating magic, version, and checksum.
[[nodiscard]] TraceReadResult read_trace(std::istream& in);
[[nodiscard]] TraceReadResult read_trace_file(const std::string& path);

/// Writes a human/tool-readable CSV (timestamp_ns, src, sport, dst, dport,
/// proto, frame_bytes, payload_bytes, flags).
bool write_trace_csv(std::ostream& out, std::span<const core::PacketHeader> trace);

}  // namespace fbdcsim::monitoring
