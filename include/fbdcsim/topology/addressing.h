// Location-encoding IPv4 addressing.
//
// The synthetic fleet assigns each host an address 10.D.R.H where D encodes
// (site, datacenter), R encodes (cluster, rack-within-cluster), and H the
// host-within-rack. This mirrors the practice of hierarchical address
// allocation in real fabrics and — more importantly for this reproduction —
// lets the Fbflow tagger annotate a sampled header with rack/cluster/DC by
// address arithmetic alone, exactly as the paper's taggers do by metadata
// lookup (Section 3.3.1).
#pragma once

#include <cstdint>
#include <optional>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/ids.h"

namespace fbdcsim::topology {

/// The packed location of a host: everything a tagger needs.
struct HostLocation {
  core::SiteId site;
  core::DatacenterId datacenter;
  core::ClusterId cluster;
  core::RackId rack;
  core::HostId host;
};

/// Bidirectional mapping between dense topology coordinates and addresses.
///
/// Layout (host byte order): 0x0A | dc(8) | rack_low(8) | host(8), with the
/// cluster and global rack index recoverable through the fleet tables. The
/// addressing scheme supports up to 255 datacenters, 255 racks per
/// addressing block, and 254 hosts per rack; the builder allocates blocks so
/// collisions cannot occur for fleets within these bounds.
class AddressPlan {
 public:
  /// Computes the address for the host with the given dense coordinates.
  /// `rack_in_dc` is the rack's index within its datacenter; `host_in_rack`
  /// the host's index within its rack.
  [[nodiscard]] static core::Ipv4Addr address_for(std::uint32_t dc_index,
                                                  std::uint32_t rack_in_dc,
                                                  std::uint32_t host_in_rack);

  /// Extracts (dc_index, rack_in_dc, host_in_rack) from an address produced
  /// by address_for; nullopt for addresses outside 10/8.
  struct Coordinates {
    std::uint32_t dc_index;
    std::uint32_t rack_in_dc;
    std::uint32_t host_in_rack;
  };
  [[nodiscard]] static std::optional<Coordinates> coordinates_of(core::Ipv4Addr addr);
};

}  // namespace fbdcsim::topology
