// Canonical scaled-down fleets used by tests, examples, and benches.
//
// The paper's fleet has hundreds of thousands of hosts; our experiments run
// on proportionally shrunken versions that preserve the *structure*: the
// cluster-type mix of Table 3, role-homogeneous racks, Frontend clusters
// mixing Web/cache-follower/Multifeed/SLB racks in roughly the 75%/20%/few
// proportions of Figure 5b, and cache-leader / Hadoop / DB / Service
// clusters as units of deployment.
#pragma once

#include <cstddef>

#include "fbdcsim/topology/entities.h"

namespace fbdcsim::topology {

struct StandardFleetConfig {
  std::size_t sites = 2;
  std::size_t datacenters_per_site = 2;
  /// Cluster counts per datacenter, by type.
  std::size_t frontend_clusters = 2;
  std::size_t cache_clusters = 1;
  std::size_t hadoop_clusters = 1;
  std::size_t database_clusters = 1;
  std::size_t service_clusters = 1;
  /// Racks per cluster and hosts per rack.
  std::size_t racks_per_cluster = 16;
  std::size_t hosts_per_rack = 8;
  /// Cache (leader) clusters are typically smaller deployment units; 0
  /// means "same as racks_per_cluster".
  std::size_t cache_racks_per_cluster = 0;

  /// Frontend cluster rack mix (must sum to <= racks_per_cluster; the
  /// remainder becomes SLB racks). Defaults approximate Figure 5b:
  /// ~75% Web servers, ~20% cache followers, few Multifeed.
  std::size_t frontend_web_racks = 12;
  std::size_t frontend_cache_racks = 3;
  std::size_t frontend_multifeed_racks = 1;
};

/// Builds a fleet with the standard structure. Throws std::invalid_argument
/// if the Frontend rack mix exceeds racks_per_cluster or any dimension is 0.
[[nodiscard]] Fleet build_standard_fleet(const StandardFleetConfig& config = {});

/// A minimal single-cluster fleet for focused tests: one cluster of the
/// given type with `racks` racks of `hosts_per_rack` hosts. Frontend
/// clusters get the standard rack mix scaled to `racks`.
[[nodiscard]] Fleet build_single_cluster_fleet(ClusterType type, std::size_t racks = 16,
                                               std::size_t hosts_per_rack = 8);

}  // namespace fbdcsim::topology
