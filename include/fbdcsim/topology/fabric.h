// Next-generation "Fabric" interconnect (Section 3.1, [9]).
//
// Facebook's Fabric replaces the 4-post cluster with server *pods*: each
// pod's TORs connect to four pod-local fabric switches, which connect to
// four independent spine planes giving uniform high cross-pod bandwidth.
// Structurally this is the same three-level folded Clos as the 4-post
// design with different fan-outs and no oversubscription at the pod level,
// so we express it by reusing the Network representation: the logical
// "cluster" becomes the pod (the paper notes the logical cluster notion is
// retained for management), kCsw plays the fabric-switch role and kFc the
// spine role.
//
// The paper's Fabric-specific claim — that a Frontend "cluster" in a Fabric
// datacenter shows the same rack-to-rack traffic matrix as Figure 5b — is
// validated in bench_fig5_traffic_matrix by running the same workload over
// a fabric-built network.
#pragma once

#include "fbdcsim/topology/network.h"

namespace fbdcsim::topology {

struct FabricConfig {
  core::DataRate access = core::DataRate::gigabits_per_sec(10);
  /// TOR -> fabric switch links; Fabric uses 40-Gbps uplinks.
  core::DataRate tor_to_fabric = core::DataRate::gigabits_per_sec(40);
  core::DataRate fabric_to_spine = core::DataRate::gigabits_per_sec(40);
  int fabric_switches_per_pod = 4;
  int spines_per_plane = 12;
};

/// Builds a Fabric-style interconnect over a Fleet whose clusters are
/// interpreted as pods.
class FabricBuilder {
 public:
  explicit FabricBuilder(FabricConfig config = {}) : config_{config} {}

  [[nodiscard]] Network build(const Fleet& fleet) const;

 private:
  FabricConfig config_;
};

}  // namespace fbdcsim::topology
