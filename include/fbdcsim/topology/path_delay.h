// Topology-derived path delays: the hop count a packet pays beyond the
// monitored rack's RSW, and the one-way propagation delay that hop count
// implies. Used by the transport layer under TcpParams::RttMode::kTopology
// so congestion feedback-loop lengths emerge from the 4-post fabric model
// instead of per-locality-class constants.
//
// The 4-post design makes path lengths a closed form of endpoint locality
// (every equal-cost choice has the same length, so ECMP never changes the
// hop count):
//
//   intra-rack           RSW only                                   0 hops
//   intra-cluster        RSW -> CSW -> RSW'                         2 hops
//   intra-datacenter     RSW -> CSW -> FC -> CSW' -> RSW'           4 hops
//   inter-DC, same site  RSW -> CSW -> SiteAgg -> CSW' -> RSW'      4 hops
//   inter-site           RSW -> CSW -> DR -> DR' -> CSW' -> RSW'    5 hops
//
// "Hops beyond the RSW" counts the links a packet traverses after leaving
// the monitored RSW, excluding the final RSW' -> host access link (the
// receiving endpoint's turnaround is modelled separately as host_delay).
// Equivalently: Router::route() link count minus the two access links.
// PathDelayEqualsRouterRoute asserts that equivalence against the real
// router on a built Network.
#pragma once

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::topology {

/// Switch-to-switch links beyond the monitored host's RSW on the path to
/// `dst` (see table above). Zero for rack-local peers.
[[nodiscard]] int hops_beyond_rsw(const Fleet& fleet, core::HostId src, core::HostId dst);

/// One-way propagation beyond the RSW: hops * per_hop, plus
/// inter_site_extra once when the endpoints sit in different sites.
[[nodiscard]] core::Duration one_way_beyond_rsw(const Fleet& fleet, core::HostId src,
                                                core::HostId dst, core::Duration per_hop,
                                                core::Duration inter_site_extra);

}  // namespace fbdcsim::topology
