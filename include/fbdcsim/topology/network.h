// The physical interconnect: switches and links of the 4-post Clos design
// (Figure 1) plus the routing used to map flows onto links.
//
// Per cluster: every rack has a top-of-rack switch (RSW) connected by
// 10-Gbps uplinks to four cluster switches (CSWs). CSWs connect upward to a
// per-datacenter "Fat Cat" (FC) aggregation layer, to intra-site aggregators
// for inter-datacenter traffic, and to datacenter routers (DR) for
// inter-site traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/packet.h"
#include "fbdcsim/core/time.h"
#include "fbdcsim/core/units.h"
#include "fbdcsim/topology/entities.h"

namespace fbdcsim::faults {
class FaultPlan;
}  // namespace fbdcsim::faults

namespace fbdcsim::topology {

using core::LinkId;
using core::SwitchId;

enum class SwitchKind : std::uint8_t {
  kRsw,     // top-of-rack
  kCsw,     // cluster switch (4 per cluster)
  kFc,      // Fat Cat datacenter aggregation
  kSiteAgg, // intra-site, inter-datacenter aggregation
  kDr,      // datacenter router (inter-site)
};

[[nodiscard]] const char* to_string(SwitchKind kind);

/// One endpoint of a link: either a host NIC or a switch.
struct NodeRef {
  enum class Kind : std::uint8_t { kHost, kSwitch };
  Kind kind{Kind::kSwitch};
  std::uint32_t index{0};  // HostId or SwitchId value

  [[nodiscard]] static NodeRef host(core::HostId id) {
    return NodeRef{Kind::kHost, id.value()};
  }
  [[nodiscard]] static NodeRef sw(SwitchId id) { return NodeRef{Kind::kSwitch, id.value()}; }

  friend constexpr bool operator==(NodeRef, NodeRef) = default;
};

struct Switch {
  SwitchId id;
  SwitchKind kind{SwitchKind::kRsw};
  // The entity this switch serves (rack for RSW, cluster for CSW, DC for FC
  // and DR, site for SiteAgg). Unused levels hold invalid ids.
  core::RackId rack;
  core::ClusterId cluster;
  core::DatacenterId datacenter;
  core::SiteId site;
};

/// A unidirectional link. Physical cables are full duplex; we model each
/// direction separately because utilization and drops are per-direction.
struct Link {
  LinkId id;
  NodeRef from;
  NodeRef to;
  core::DataRate capacity;
};

/// The interconnect graph for a Fleet, built by FourPostBuilder.
class Network {
 public:
  [[nodiscard]] std::span<const Switch> switches() const { return switches_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  [[nodiscard]] const Switch& sw(SwitchId id) const { return switches_.at(id.value()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.value()); }

  /// The RSW serving a rack.
  [[nodiscard]] SwitchId rsw_of(core::RackId rack) const { return rsw_by_rack_.at(rack.value()); }
  /// The four CSWs of a cluster.
  [[nodiscard]] std::span<const SwitchId> csws_of(core::ClusterId cluster) const;
  /// The FC switches of a datacenter.
  [[nodiscard]] std::span<const SwitchId> fcs_of(core::DatacenterId dc) const;
  /// The intra-site aggregation switches of a site.
  [[nodiscard]] std::span<const SwitchId> siteaggs_of(core::SiteId site) const;
  /// The datacenter router of a datacenter.
  [[nodiscard]] SwitchId dr_of(core::DatacenterId dc) const {
    return dr_by_dc_.at(dc.value());
  }

  /// The link from one node to another, if directly connected.
  [[nodiscard]] LinkId find_link(NodeRef from, NodeRef to) const;

  /// Links leaving a node.
  [[nodiscard]] std::span<const LinkId> links_from(NodeRef node) const;

  /// The access link host -> RSW (uplink direction).
  [[nodiscard]] LinkId access_uplink(core::HostId host) const {
    return host_uplink_.at(host.value());
  }
  /// The access link RSW -> host (downlink direction).
  [[nodiscard]] LinkId access_downlink(core::HostId host) const {
    return host_downlink_.at(host.value());
  }

 private:
  friend class FourPostBuilder;
  friend class NetworkBuild;  // construction helper (network.cpp)

  [[nodiscard]] std::size_t node_key(NodeRef node) const;

  std::vector<Switch> switches_;
  std::vector<Link> links_;
  std::vector<SwitchId> rsw_by_rack_;                 // indexed by RackId
  std::vector<std::vector<SwitchId>> csw_by_cluster_; // indexed by ClusterId
  std::vector<std::vector<SwitchId>> fc_by_dc_;       // indexed by DatacenterId
  std::vector<std::vector<SwitchId>> siteagg_by_site_;// indexed by SiteId
  std::vector<SwitchId> dr_by_dc_;                    // indexed by DatacenterId
  std::vector<LinkId> host_uplink_;                   // indexed by HostId
  std::vector<LinkId> host_downlink_;                 // indexed by HostId
  std::vector<std::vector<LinkId>> out_links_;        // indexed by node key
  std::size_t num_hosts_{0};
};

/// Capacities for the 4-post build. Defaults follow the paper: 10-Gbps
/// edge and RSW uplinks, 40-Gbps aggregation links (Section 4.1 discusses
/// the 1->10 edge vs 10->40 aggregation upgrade disparity).
struct FourPostConfig {
  core::DataRate access = core::DataRate::gigabits_per_sec(10);
  core::DataRate rsw_to_csw = core::DataRate::gigabits_per_sec(10);
  core::DataRate csw_to_fc = core::DataRate::gigabits_per_sec(40);
  core::DataRate csw_to_siteagg = core::DataRate::gigabits_per_sec(40);
  core::DataRate csw_to_dr = core::DataRate::gigabits_per_sec(40);
  int csws_per_cluster = 4;
  int fcs_per_datacenter = 4;
  int siteaggs_per_site = 2;
  /// Number of RSW->CSW uplinks per (RSW, CSW) pair.
  int uplinks_per_csw = 1;
};

/// Builds the Clos interconnect for an existing Fleet.
class FourPostBuilder {
 public:
  explicit FourPostBuilder(FourPostConfig config = {}) : config_{config} {}

  [[nodiscard]] Network build(const Fleet& fleet) const;

 private:
  FourPostConfig config_;
};

/// Deterministic ECMP routing over a 4-post Network: computes the sequence
/// of links a flow traverses from src to dst, hashing the 5-tuple to pick
/// among equal-cost CSW/FC choices (as production ECMP does).
class Router {
 public:
  Router(const Fleet& fleet, const Network& network) : fleet_{&fleet}, network_{&network} {}

  /// Links traversed (in order) by packets of `tuple` from src to dst.
  [[nodiscard]] std::vector<LinkId> route(core::HostId src, core::HostId dst,
                                          const core::FiveTuple& tuple) const;

  /// Fault-aware routing: equal-cost choices whose first-hop link is failed
  /// at `at` leave that hop's ECMP set (production ECMP reroutes around
  /// down links). When every choice has failed, the full set is used — the
  /// packet still takes a (dead) path rather than vanishing, so link-level
  /// accounting can show the saturation. A null or disabled plan makes this
  /// identical to route().
  [[nodiscard]] std::vector<LinkId> route(core::HostId src, core::HostId dst,
                                          const core::FiveTuple& tuple, core::TimePoint at,
                                          const faults::FaultPlan* plan) const;

 private:
  const Fleet* fleet_;
  const Network* network_;
};

}  // namespace fbdcsim::topology
