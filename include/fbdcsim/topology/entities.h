// The fleet entity model: sites contain datacenters contain clusters contain
// racks contain hosts (Section 3.1). The Fleet is an immutable, index-based
// arena built once by a builder; all IDs are dense indices into its vectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fbdcsim/core/addr.h"
#include "fbdcsim/core/flow.h"
#include "fbdcsim/core/ids.h"
#include "fbdcsim/core/units.h"

namespace fbdcsim::topology {

using core::ClusterId;
using core::DatacenterId;
using core::HostId;
using core::HostRole;
using core::RackId;
using core::SiteId;

/// The deployment flavour of a cluster (Section 3.1): homogeneous clusters
/// hold one role; Frontend clusters mix Web, cache followers, Multifeed, and
/// SLB racks.
enum class ClusterType : std::uint8_t {
  kFrontend,
  kCache,        // cache leader clusters
  kHadoop,
  kDatabase,
  kService,
};

[[nodiscard]] const char* to_string(ClusterType type);

struct Host {
  HostId id;
  RackId rack;
  ClusterId cluster;
  DatacenterId datacenter;
  SiteId site;
  HostRole role{HostRole::kService};
  core::Ipv4Addr addr;
};

struct Rack {
  RackId id;
  ClusterId cluster;
  DatacenterId datacenter;
  SiteId site;
  HostRole role{HostRole::kService};  // racks are role-homogeneous (§3.1)
  std::vector<HostId> hosts;
};

struct Cluster {
  ClusterId id;
  DatacenterId datacenter;
  SiteId site;
  ClusterType type{ClusterType::kService};
  std::vector<RackId> racks;
};

struct Datacenter {
  DatacenterId id;
  SiteId site;
  std::vector<ClusterId> clusters;
};

struct Site {
  SiteId id;
  std::string name;
  std::vector<DatacenterId> datacenters;
};

/// Immutable description of the whole simulated fleet.
class Fleet {
 public:
  [[nodiscard]] std::span<const Host> hosts() const { return hosts_; }
  [[nodiscard]] std::span<const Rack> racks() const { return racks_; }
  [[nodiscard]] std::span<const Cluster> clusters() const { return clusters_; }
  [[nodiscard]] std::span<const Datacenter> datacenters() const { return datacenters_; }
  [[nodiscard]] std::span<const Site> sites() const { return sites_; }

  [[nodiscard]] const Host& host(HostId id) const { return hosts_.at(id.value()); }
  [[nodiscard]] const Rack& rack(RackId id) const { return racks_.at(id.value()); }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const { return clusters_.at(id.value()); }
  [[nodiscard]] const Datacenter& datacenter(DatacenterId id) const {
    return datacenters_.at(id.value());
  }
  [[nodiscard]] const Site& site(SiteId id) const { return sites_.at(id.value()); }

  /// Host lookup by address; returns an invalid id if unknown.
  [[nodiscard]] HostId host_by_addr(core::Ipv4Addr addr) const;

  /// All hosts of a given role, fleet-wide.
  [[nodiscard]] std::vector<HostId> hosts_with_role(HostRole role) const;

  /// All hosts of a given role within one cluster.
  [[nodiscard]] std::vector<HostId> hosts_with_role_in_cluster(HostRole role,
                                                               ClusterId cluster) const;

  /// Relative location of dst with respect to src (Section 4.2).
  [[nodiscard]] core::Locality locality(HostId src, HostId dst) const;

  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_racks() const { return racks_.size(); }

 private:
  friend class FleetBuilder;

  std::vector<Host> hosts_;
  std::vector<Rack> racks_;
  std::vector<Cluster> clusters_;
  std::vector<Datacenter> datacenters_;
  std::vector<Site> sites_;
};

/// Incrementally constructs a Fleet. The builder assigns dense IDs and
/// location-encoding IPv4 addresses (see addressing.h).
class FleetBuilder {
 public:
  SiteId add_site(std::string name);
  DatacenterId add_datacenter(SiteId site);
  ClusterId add_cluster(DatacenterId dc, ClusterType type);
  RackId add_rack(ClusterId cluster, HostRole role);
  HostId add_host(RackId rack);

  /// Adds `num_hosts` hosts to a fresh rack; returns the rack id.
  RackId add_rack_of(ClusterId cluster, HostRole role, std::size_t num_hosts);

  [[nodiscard]] Fleet build();

 private:
  Fleet fleet_;
};

}  // namespace fbdcsim::topology
