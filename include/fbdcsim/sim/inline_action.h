// Small-buffer-optimized event action: the type-erased callable the event
// engine stores per scheduled event.
//
// std::function heap-allocates any capture larger than its 16-byte inline
// buffer, which on the rack-sim hot path means one malloc/free per packet
// event (the Wire emit lambdas capture ~48 bytes). InlineAction widens the
// inline buffer to kInlineBytes so every capture the engine's clients use
// today — rack_sim, SharedBufferSwitch, the service models, PeriodicTimer —
// is stored in place; larger callables still work but fall back to the
// heap. The engine counts both paths ("sim.events_inline" /
// "sim.events_heap") so the fallback is observable, and a scorecard-length
// run asserts the heap count stays zero (tests/sim/inline_action_test.cpp).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fbdcsim::sim {

class InlineAction {
 public:
  /// Inline storage for captures up to this size (the issue floor is 48;
  /// 56 gives the largest current capture — Hadoop's 48-byte stream-chunk
  /// lambda — headroom without growing sizeof(InlineAction) past 64).
  static constexpr std::size_t kInlineBytes = 56;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// Whether a callable of type F is stored inline (compile-time, so both
  /// engines count the same schedule the same way regardless of how they
  /// store it). Requires nothrow move so relocating a queued event can
  /// never throw mid-engine.
  template <typename F>
  static constexpr bool fits_inline = sizeof(F) <= kInlineBytes &&
                                      alignof(F) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<F>;

  InlineAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineAction>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "InlineAction requires a nullary callable");
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
    }
    ops_ = ops_for<Fn>();
  }

  InlineAction(InlineAction&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }
  /// True when the callable lives in the inline buffer (false for the heap
  /// fallback or an empty action).
  [[nodiscard]] bool is_inline() const noexcept { return ops_ != nullptr && ops_->inlined; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    /// Move-constructs the callable at dst from src, then destroys src
    /// (for the heap case: just moves the pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    bool inlined;
  };

  template <typename Fn>
  [[nodiscard]] static const Ops* ops_for() noexcept {
    if constexpr (fits_inline<Fn>) {
      static constexpr Ops ops{
          [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
          [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
          [](void* src, void* dst) noexcept {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          true};
      return &ops;
    } else {
      static constexpr Ops ops{
          [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
          [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
          [](void* src, void* dst) noexcept {
            ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
          },
          false};
      return &ops;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) std::byte storage_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace fbdcsim::sim
