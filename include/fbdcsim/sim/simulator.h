// Discrete-event simulation engine.
//
// A single-threaded event loop over a priority queue of (time, sequence,
// action). Equal-time events fire in scheduling order (FIFO), which makes
// every run deterministic — a prerequisite for the reproducibility promises
// in DESIGN.md §6.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "fbdcsim/core/time.h"

namespace fbdcsim::sim {

using core::Duration;
using core::TimePoint;

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `action` at absolute time `at` (must not be in the past).
  void schedule_at(TimePoint at, Action action);

  /// Schedules `action` after a delay from now.
  void schedule_after(Duration delay, Action action) { schedule_at(now_ + delay, std::move(action)); }

  /// Runs events until the queue is empty or the horizon is passed. Events
  /// strictly after `horizon` remain queued; time stops at the horizon.
  void run_until(TimePoint horizon);

  /// Runs until the queue is empty.
  void run();

  /// Discards all pending events (the clock is unchanged).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A repeating timer helper: invokes `tick` every `period` until cancelled
/// or the simulator stops. The callback receives the firing time.
class PeriodicTimer {
 public:
  using Tick = std::function<void(TimePoint)>;

  PeriodicTimer(Simulator& sim, Duration period, Tick tick);
  ~PeriodicTimer() { cancel(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void cancel() { *alive_ = false; }

 private:
  void arm(TimePoint at);

  Simulator* sim_;
  Duration period_;
  Tick tick_;
  std::shared_ptr<bool> alive_;
};

}  // namespace fbdcsim::sim
