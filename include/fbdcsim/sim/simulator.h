// Discrete-event simulation engine.
//
// A single-threaded event loop executing actions in (time, seq) order:
// equal-time events fire in scheduling order (FIFO), which makes every run
// deterministic — a prerequisite for the reproducibility promises in
// DESIGN.md §6.
//
// Two engines share this contract (DESIGN.md §9):
//
//   - Engine::kBucketed (default): a two-level calendar scheduler. Events
//     within the near-future window land in a 1024-bucket time wheel
//     (4.096 us per bucket, ~4.2 ms window) and are sorted per bucket only
//     when the wheel reaches them; events beyond the window wait in an
//     overflow heap and migrate into the wheel as it rotates. Actions are
//     stored as InlineAction (no heap allocation for captures up to 56
//     bytes — every current hot-path capture).
//   - Engine::kReference: the pre-rewrite engine, verbatim — a single
//     std::priority_queue of std::function actions. It exists as the
//     differential baseline: tests/sim/engine_differential_* prove the
//     bucketed engine bit-identical to it on every workload preset, and
//     bench_runtime_scaling measures the bucketed engine's events/sec
//     against it.
//
// Both engines execute the exact same global (time, seq) order, so every
// simulation output is engine-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "fbdcsim/core/time.h"
#include "fbdcsim/sim/inline_action.h"
#include "fbdcsim/telemetry/telemetry.h"

namespace fbdcsim::sim {

using core::Duration;
using core::TimePoint;

class Simulator {
 public:
  using Action = InlineAction;

  enum class Engine : std::uint8_t {
    kBucketed,   // calendar wheel + overflow heap, InlineAction storage
    kReference,  // pre-rewrite binary heap of std::function (differential baseline)
  };

  Simulator() = default;
  explicit Simulator(Engine engine) : engine_{engine} {}

  [[nodiscard]] Engine engine() const { return engine_; }

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules a callable at absolute time `at` (must not be in the past).
  /// The reference engine stores it as std::function exactly as the
  /// pre-rewrite engine did; the bucketed engine stores it as InlineAction.
  /// Either way the schedule is counted as inline/heap by what InlineAction
  /// would do, so the two engines' telemetry stays bit-identical.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Action>>>
  void schedule_at(TimePoint at, F&& f) {
    if (at < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
    count_schedule(Action::fits_inline<std::decay_t<F>>);
    if (engine_ == Engine::kReference) {
      if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
        schedule_reference(at, std::function<void()>(std::forward<F>(f)));
      } else {
        // std::function requires copyable targets; box move-only callables.
        auto boxed = std::make_shared<std::decay_t<F>>(std::forward<F>(f));
        schedule_reference(at, [boxed] { (*boxed)(); });
      }
    } else {
      schedule_bucketed(at, Action{std::forward<F>(f)});
    }
  }

  /// Schedules an already type-erased action (hot paths that pre-build
  /// InlineActions, tests).
  void schedule_at(TimePoint at, Action action) {
    if (at < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
    count_schedule(action.is_inline());
    if (engine_ == Engine::kReference) {
      auto boxed = std::make_shared<Action>(std::move(action));
      schedule_reference(at, [boxed] { (*boxed)(); });
    } else {
      schedule_bucketed(at, std::move(action));
    }
  }

  /// Schedules after a delay from now.
  template <typename F>
  void schedule_after(Duration delay, F&& f) {
    schedule_at(now_ + delay, std::forward<F>(f));
  }

  /// Runs events until the queue is empty or the horizon is passed. Events
  /// strictly after `horizon` remain queued; time stops at the horizon.
  void run_until(TimePoint horizon);

  /// Runs until the queue is empty.
  void run();

  /// Discards all pending events (the clock is unchanged). Safe to call
  /// from inside an executing event: the remaining queue is dropped and
  /// anything the current action schedules afterwards still runs.
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return size_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  // ---- shared ----
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct RefEvent {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> action;
  };
  template <typename E>
  struct Later {
    bool operator()(const E& a, const E& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void count_schedule(bool inline_path) {
    FBDCSIM_T_COUNTER(inline_events, "sim.events_inline", Sim);
    FBDCSIM_T_COUNTER(heap_events, "sim.events_heap", Sim);
    if (inline_path) {
      FBDCSIM_T_ADD(inline_events, 1);
    } else {
      FBDCSIM_T_ADD(heap_events, 1);
    }
  }

  // ---- bucketed engine ----
  static constexpr unsigned kBucketShiftBits = 12;  // 4096 ns per bucket
  static constexpr std::int64_t kWheelSize = 1024;  // ~4.2 ms window
  static constexpr std::int64_t kWheelMask = kWheelSize - 1;

  [[nodiscard]] static std::int64_t bucket_of(TimePoint at) {
    return at.count_nanos() >> kBucketShiftBits;  // sim time is never negative
  }

  struct Bucket {
    std::vector<Event> items;
    std::size_t pos{0};  // executed (moved-from) prefix of items
    bool dirty{false};   // items[pos..] not known sorted
  };

  void schedule_bucketed(TimePoint at, Action action);
  void schedule_reference(TimePoint at, std::function<void()> action);
  void run_loop(TimePoint horizon, bool bounded);
  void run_loop_reference(TimePoint horizon, bool bounded);
  /// Moves overflow events that now fall inside the wheel window into it.
  void migrate_overflow();

  Engine engine_{Engine::kBucketed};
  TimePoint now_;
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::size_t size_{0};

  std::vector<Bucket> wheel_{static_cast<std::size_t>(kWheelSize)};
  std::int64_t cursor_{0};  // absolute index of the bucket being drained
  bool draining_{false};    // inside run_loop, draining bucket cursor_
  /// Events scheduled into bucket cursor_ while it is being drained (kept
  /// out of the bucket vector so the in-progress sorted scan stays valid).
  std::priority_queue<Event, std::vector<Event>, Later<Event>> active_;
  /// Events beyond the wheel window, ordered by (time, seq).
  std::priority_queue<Event, std::vector<Event>, Later<Event>> overflow_;

  std::priority_queue<RefEvent, std::vector<RefEvent>, Later<RefEvent>> ref_queue_;
};

/// A repeating timer: invokes `tick` every `period` until cancelled or the
/// simulator stops. The callback receives the firing time.
///
/// Reentrancy contract: a tick may cancel() its own timer — or destroy the
/// PeriodicTimer outright — and the timer will not reschedule. The shared
/// State below is what makes destruction-during-tick safe: the in-flight
/// event owns a reference, so the executing callback never dangles even
/// after ~PeriodicTimer runs (the pre-rewrite implementation kept the
/// callback inside the timer object and destroyed it mid-invocation).
class PeriodicTimer {
 public:
  using Tick = std::function<void(TimePoint)>;

  PeriodicTimer(Simulator& sim, Duration period, Tick tick);
  ~PeriodicTimer() { cancel(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Idempotent; safe to call from inside the timer's own tick.
  void cancel() noexcept {
    if (state_ != nullptr) state_->alive = false;
  }

 private:
  struct State {
    Simulator* sim;
    Duration period;
    Tick tick;
    bool alive{true};
  };

  static void arm(const std::shared_ptr<State>& state, TimePoint at);

  std::shared_ptr<State> state_;
};

}  // namespace fbdcsim::sim
